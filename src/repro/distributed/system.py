"""The distributed DBMS model: multiple sites, one simulation.

Model summary (extensions of the paper's Section 3 model; each choice
is documented where it is implemented):

* The database is range-partitioned across ``num_sites`` sites; every
  site owns a CPU pool, a disk array, and a lock table for its pages.
* A transaction is *homed* at its terminal's site.  It executes
  sequentially: for each page, a lock request at the owning site (a
  remote request pays ``msg_delay`` each way), then ``page_io`` +
  ``page_cpu`` at the owning site's resources.
* Locks are held at their owning sites until after deferred updates
  (strict 2PL, distributed).  A distributed commit optionally pays a
  prepare round trip (``two_phase_commit``); remote lock releases
  arrive one ``msg_delay`` after the commit point.
* Deadlock handling is global: detection walks the union waits-for
  graph of all sites (an oracle detector — the message cost of a real
  distributed detector like path-pushing is *not* modelled), or the
  timestamp prevention schemes can be used, which need no global view
  by construction.
* Load control: per-site controllers over home populations; admission
  happens only at the home site, which makes admission-wait cycles
  ("load control deadlocks", Section 5) impossible — see
  :mod:`repro.distributed.controllers`.

Simplifications versus a production distributed DBMS, all noted here:
the network is pure delay (no bandwidth or queueing), abort/release
messages for aborts are instantaneous, and the 2PC vote collection is
collapsed into a single round-trip delay.

**Failure-realistic mode** (``params.failure_model`` or an installed
:class:`repro.distributed.failures.SiteFaultPlan`) replaces those last
two simplifications with the real machinery:

* remote page/write work becomes a reliable request/reply exchange
  over :class:`repro.distributed.network.Network` (loss, jitter,
  timeout + bounded-backoff retransmission); an exchange whose target
  stays unreachable aborts the transaction (``remote_timeout``);
* distributed commits always run the full 2PC state machine — prepare
  requests, YES votes, an explicit in-doubt state at prepared
  participants, a durable coordinator decision record, best-effort
  decision delivery with a presumed-abort timer as the fallback —
  regardless of the ``two_phase_commit`` flag (the collapsed
  round-trip cannot express in-doubt blocking);
* sites crash and recover on the fault plan's schedule: in-flight
  home transactions abort (waiting ones immediately, running ones at
  their next checkpoint via ``Transaction.doomed``), prepared
  in-doubt locks survive the crash, every other lock at the site is
  released, and arrivals/restarts for a down home site park until
  recovery;
* each site heartbeats the others and clamps its own admission to
  ``safe_mode_mpl`` while any remote site has gone silent for
  ``suspect_after`` (degraded mode, logged as decisions).

What is still *not* modelled, deliberately: I/O in progress at a
crashing site completes mechanically (the transaction aborts at its
next checkpoint instead of the device dying mid-transfer), abort
cleanup at reachable sites stays instantaneous, and the presumed-abort
timer reads the coordinator's durable decision record directly — an
oracle stand-in for a recovery-time inquiry message.

With the failure model off, every failure-path branch is skipped and
the calendar the fast paths build is byte-identical to the pure-delay
model above — the same zero-cost-off contract as telemetry and verify.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.maturity import MaturityRule
from repro.core.state_tracker import StateTracker
from repro.dbms.ready_queue import ReadyQueue
from repro.dbms.transaction import Transaction, TxnPhase
from repro.distributed.config import DistributedParameters
from repro.distributed.controllers import PerSiteControllerSet
from repro.distributed.failures import SiteFaultPlan
from repro.distributed.network import Network, ReliableCall
from repro.distributed.partition import RangePartition
from repro.distributed.workload import DistributedWorkload
from repro.errors import ConfigurationError, SimulationError
from repro.lockmgr.deadlock import resolve_deadlocks
from repro.lockmgr.lock_table import LockTable, RequestOutcome
from repro.lockmgr.modes import LockMode
from repro.lockmgr.prevention import (
    DeadlockStrategy,
    wait_die_should_die,
    wound_wait_victims,
)
from repro.metrics.collector import AbortReason, Collector
from repro.sim.engine import Simulator
from repro.sim.resources import CpuPool, DiskArray
from repro.sim.rng import RandomStreams

__all__ = ["DistributedSystem"]


class _Site:
    """One site's hardware and lock manager."""

    __slots__ = ("site_id", "cpu", "disks", "lock_table")

    def __init__(self, site_id: int, sim: Simulator,
                 params: DistributedParameters):
        self.site_id = site_id
        self.cpu = CpuPool(sim, params.num_cpus)
        self.disks = DiskArray(sim, params.num_disks)
        self.lock_table = LockTable()


class _InDoubt:
    """A prepared participant's record for one transaction: its locks
    at this site are frozen until the coordinator's decision arrives
    (or the presumed-abort timer resolves them)."""

    __slots__ = ("txn", "coordinator", "since")

    def __init__(self, txn: Transaction, coordinator: int, since: float):
        self.txn = txn
        self.coordinator = coordinator
        self.since = since


class _TwoPC:
    """Coordinator-side volatile state for one commit attempt.

    Lost if the coordinator's site crashes — which is exactly what
    leaves participants in doubt."""

    __slots__ = ("participants", "pending", "calls", "gen")

    def __init__(self, participants: List[int], gen: int):
        self.participants = participants
        self.pending = set(participants)
        self.calls: Dict[int, ReliableCall] = {}
        self.gen = gen                  # txn.restarts at prepare time


class _RemoteOp:
    """One remote page/write visit in flight (failure mode only).

    Identity is the guard: retransmitted requests and late replies
    carry the op object itself, and handlers ignore anything that is
    not the transaction's *current* op."""

    __slots__ = ("txn", "owner", "page", "kind", "call",
                 "started", "replied")

    def __init__(self, txn: Transaction, owner: int, page: int,
                 kind: str):
        self.txn = txn
        self.owner = owner
        self.page = page
        self.kind = kind                # "page" or "write"
        self.call: ReliableCall = None  # type: ignore[assignment]
        self.started = False            # work began at the owner
        self.replied = False            # owner sent the reply


class _GlobalLockView:
    """Union view over all site lock tables.

    A transaction waits for at most one lock at one site, so every
    query routes to the site recorded in the system's waiting map (or
    scans all sites for holder-side questions).
    """

    def __init__(self, system: "DistributedSystem"):
        self._system = system

    def is_waiting(self, txn: Transaction) -> bool:
        return txn in self._system.waiting_site

    def blocking_order(self, txn: Transaction) -> List[Transaction]:
        site = self._system.waiting_site.get(txn)
        if site is None:
            return []
        return self._system.sites[site].lock_table.blocking_order(txn)

    def blocking_set(self, txn: Transaction):
        site = self._system.waiting_site.get(txn)
        if site is None:
            return set()
        return self._system.sites[site].lock_table.blocking_set(txn)

    def is_blocking_others(self, txn: Transaction) -> bool:
        return any(site.lock_table.is_blocking_others(txn)
                   for site in self._system.sites)

    def num_held(self, txn: Transaction) -> int:
        return sum(site.lock_table.num_held(txn)
                   for site in self._system.sites)


class _SiteView:
    """The controller-facing facade of one site.

    Exposes exactly the surface :class:`repro.control.base.
    LoadController` uses, so unmodified single-site controllers govern
    each site's home population.
    """

    def __init__(self, system: "DistributedSystem", site_id: int):
        self._system = system
        self.site_id = site_id
        self.sim = system.sim                   # decision-log timestamps
        self.tracker = StateTracker()           # home population only
        self.ready_queue = ReadyQueue()
        self.lock_table = system.global_locks   # global victim queries
        self.streams = system.streams

    def try_admit_one(self) -> bool:
        if self._system.failure_mode and not self._system._admission_open(
                self.site_id):
            return False
        if self._system.admission_order is not None:
            txn = self.ready_queue.pop_best(self._system.admission_order)
        else:
            txn = self.ready_queue.pop()
        if txn is None:
            return False
        self._system.collector.set_ready_queue_length(
            self._system.sim.now,
            sum(len(v.ready_queue) for v in self._system.site_views))
        self._system._admit(txn)
        return True

    def abort_transaction(self, txn: Transaction, reason: str) -> None:
        self._system.abort_transaction(txn, reason)


class DistributedSystem:
    """A complete multi-site simulated DBMS instance for one run."""

    def __init__(self,
                 params: DistributedParameters,
                 controllers: PerSiteControllerSet,
                 workload: Optional[DistributedWorkload] = None,
                 maturity_rule: Optional[MaturityRule] = None,
                 collector: Optional[Collector] = None,
                 sim: Optional[Simulator] = None,
                 streams: Optional[RandomStreams] = None,
                 deadlock_strategy: DeadlockStrategy =
                 DeadlockStrategy.DETECTION,
                 admission_order=None,
                 fault_plan: Optional[SiteFaultPlan] = None):
        if len(controllers) != params.num_sites:
            raise ConfigurationError(
                f"{len(controllers)} controllers for "
                f"{params.num_sites} sites")
        self.params = params
        self.sim = sim if sim is not None else Simulator()
        self.streams = (streams if streams is not None
                        else RandomStreams(params.seed))
        self.collector = collector if collector is not None else Collector()
        self.partition = RangePartition(params.db_size, params.num_sites)
        self.sites = [_Site(i, self.sim, params)
                      for i in range(params.num_sites)]
        self.global_locks = _GlobalLockView(self)
        # Global tracker feeds the collector; per-site trackers feed the
        # per-site controllers.  Both are updated in lockstep.
        self.tracker = StateTracker(self.collector)
        self.maturity_rule = (maturity_rule if maturity_rule is not None
                              else MaturityRule())
        self.deadlock_strategy = deadlock_strategy
        self.admission_order = admission_order
        self.workload = (workload if workload is not None
                         else DistributedWorkload(self.streams, params,
                                                  self.partition))
        self.controllers = controllers
        self.site_views = [_SiteView(self, i)
                           for i in range(params.num_sites)]
        for view, controller in zip(self.site_views,
                                    controllers.controllers):
            controller.attach(view)
        # txn -> site where its lock request is waiting.
        self.waiting_site: Dict[Transaction, int] = {}
        self._home: Dict[Transaction, int] = {}
        self._disk_rng = self.streams.stream("disk_choice")
        self._next_txn_id = 0
        self._started = False
        self.total_generated = 0
        self.remote_accesses = 0
        self.local_accesses = 0
        # Cumulative commits by home site (per-site telemetry series).
        self.site_commits = [0] * params.num_sites
        # ---- failure-realistic layer (zero-cost when off) ----
        self.failure_mode = params.failure_model or bool(fault_plan)
        self.fault_plan = fault_plan
        self.decision_log = None        # installed by telemetry
        self._site_up = [True] * params.num_sites
        self._degraded = [False] * params.num_sites
        # _last_heard[i][j]: when site i last received anything from j.
        self._last_heard = [[0.0] * params.num_sites
                            for _ in range(params.num_sites)]
        self.network = Network(self.sim, self.streams, params,
                               self.failure_mode, self._is_site_up,
                               self._note_heard)
        # Per-site prepared-participant records: txn_id -> _InDoubt.
        self._indoubt: List[Dict[int, _InDoubt]] = [
            {} for _ in range(params.num_sites)]
        self._twopc: Dict[Transaction, _TwoPC] = {}
        # Coordinator's "durable log": txn_id -> "commit"/"abort".  An
        # absent entry means no decision was ever recorded — the
        # presumed-abort rule.  _decision_waiters counts unresolved
        # in-doubt entries per decision so records are garbage-collected
        # once every participant has learned the outcome.
        self.decision_record: Dict[int, str] = {}
        self._decision_waiters: Dict[int, int] = {}
        # Aborted txns whose in-doubt participant locks are still
        # unresolved: restart is deferred until the set empties, so a
        # restarted incarnation can never race its predecessor's locks.
        self._limbo: Dict[Transaction, set] = {}
        self._inflight: Dict[Transaction, _RemoteOp] = {}
        # Work parked while its home site is down, replayed at recovery.
        self._parked_txns: Dict[int, List[Transaction]] = {}
        self._parked_terminals: Dict[int, List[int]] = {}
        if fault_plan:
            fault_plan.install(self)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def home_of(self, txn: Transaction) -> int:
        return self._home[txn]

    def _controller_of(self, txn: Transaction):
        return self.controllers.for_site(self._home[txn])

    def _view_of(self, txn: Transaction) -> _SiteView:
        return self.site_views[self._home[txn]]

    @staticmethod
    def _age_key(txn: Transaction):
        return (txn.timestamp, txn.txn_id)

    # ------------------------------------------------------------------
    # Startup and arrivals
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise SimulationError("DistributedSystem.start() called twice")
        self._started = True
        for terminal_id in range(self.params.num_terms):
            delay = self.streams.exponential("think_time",
                                             self.params.think_time)
            self.sim.schedule(delay, self._terminal_submits, terminal_id)
        if self.failure_mode:
            for site_id in range(self.params.num_sites):
                self.sim.schedule(self.params.heartbeat_interval,
                                  self._heartbeat, site_id)

    def _terminal_submits(self, terminal_id: int) -> None:
        if self.failure_mode:
            home = self.workload.home_site_of_terminal(terminal_id)
            if not self._site_up[home]:
                # The terminal's site is dark: nothing to submit to.
                # Parked before the transaction is generated, so the
                # workload stream is not consumed for it.
                self._parked_terminals.setdefault(home, []).append(
                    terminal_id)
                return
        txn = self.workload.make_transaction(
            self._next_txn_id, terminal_id, self.sim.now)
        self._next_txn_id += 1
        self.total_generated += 1
        txn.estimated_locks = max(
            1, round(txn.total_lock_requests()
                     * self.params.estimate_error))
        txn.maturity_threshold = self.maturity_rule.threshold(
            txn.estimated_locks)
        self._home[txn] = self.workload.home_site_of_terminal(terminal_id)
        self._arrival(txn)

    def _arrival(self, txn: Transaction) -> None:
        view = self._view_of(txn)
        if self.failure_mode:
            home = self._home[txn]
            if not self._site_up[home]:
                self._parked_txns.setdefault(home, []).append(txn)
                return
            if not self._admission_open(home):
                # Safe-mode clamp: queue without consulting the
                # controller; drained (re-presented) at DEGRADED_EXIT.
                view.ready_queue.push(txn)
                self.collector.set_ready_queue_length(
                    self.sim.now, sum(len(v.ready_queue)
                                      for v in self.site_views))
                return
        if self._controller_of(txn).want_admit(txn):
            self._admit(txn)
        else:
            view.ready_queue.push(txn)
            self.collector.set_ready_queue_length(
                self.sim.now, sum(len(v.ready_queue)
                                  for v in self.site_views))

    def _admit(self, txn: Transaction) -> None:
        txn.phase = TxnPhase.EXECUTING
        txn.admitted_at = self.sim.now
        self._track_add(txn)
        self.collector.on_admission()
        self._controller_of(txn).on_admit(txn)
        self.sim.schedule(0.0, self._next_operation, txn)

    # ------------------------------------------------------------------
    # Dual tracker bookkeeping
    # ------------------------------------------------------------------

    def _track_add(self, txn: Transaction) -> None:
        self.tracker.add(txn, self.sim.now)
        # add() resets the flags; the second add must not re-reset state
        # between the calls, so mirror manually.
        view = self._view_of(txn)
        view.tracker._active.add(txn)
        view.tracker.n_active += 1
        view.tracker.n_state2 += 1

    def _track_remove(self, txn: Transaction) -> None:
        view = self._view_of(txn)
        view.tracker.remove(txn, self.sim.now)
        self.tracker.remove(txn, self.sim.now)

    def _track_blocked(self, txn: Transaction, blocked: bool) -> None:
        if txn.is_blocked == blocked:
            return
        view = self._view_of(txn)
        # Order matters: the global tracker flips the flag; the site
        # tracker adjusts its buckets around the same flag, so flip via
        # the site tracker first (it checks the current flag).
        view.tracker.set_blocked(txn, blocked, self.sim.now)
        txn.is_blocked = not blocked      # restore for the global pass
        self.tracker.set_blocked(txn, blocked, self.sim.now)

    def _track_mature(self, txn: Transaction) -> None:
        if txn.is_mature:
            return
        view = self._view_of(txn)
        view.tracker.set_mature(txn, self.sim.now)
        txn.is_mature = False             # restore for the global pass
        self.tracker.set_mature(txn, self.sim.now)

    # ------------------------------------------------------------------
    # Execution state machine
    # ------------------------------------------------------------------

    def _check_failed(self, txn: Transaction) -> bool:
        """Checkpoint: abort a doomed (site crash) or wounded txn.

        Doomed wins over wounded — the crash already sealed its fate.
        Always False on the fast path (``doomed`` stays None with the
        failure model off)."""
        if txn.doomed is not None:
            self.abort_transaction(txn, txn.doomed)
            return True
        if txn.wounded:
            self.abort_transaction(txn, AbortReason.WOUND_WAIT)
            return True
        return False

    def _next_operation(self, txn: Transaction) -> None:
        if self._check_failed(txn):
            return
        if txn.finished_reading():
            txn.pending_updates = [p for p in txn.readset
                                   if p in txn.writeset]
            txn.phase = TxnPhase.UPDATING
            self._next_deferred_write(txn)
            return
        page = txn.current_page()
        owner = self.partition.site_of(page)
        home = self._home[txn]
        if owner != home:
            self.remote_accesses += 1
            if self.failure_mode:
                self._begin_remote_op(txn, page, owner, "page")
                return
            delay = self.params.msg_delay
            if delay > 0.0:
                self.sim.schedule(delay, self._request_lock_at, txn,
                                  page, owner, False)
            else:
                self._request_lock_at(txn, page, owner, False)
            return
        self.local_accesses += 1
        self._request_lock_at(txn, page, owner, False)

    def _request_lock_at(self, txn: Transaction, page: int, owner: int,
                         upgrade: bool) -> None:
        if self._check_failed(txn):
            return
        table = self.sites[owner].lock_table
        mode = LockMode.X if upgrade else LockMode.S
        if not self.params.locking_enabled:
            self._lock_granted_at(txn, owner, upgrade)
            return
        outcome = table.request(txn, page, mode)
        if outcome is RequestOutcome.GRANTED:
            self._lock_granted_at(txn, owner, upgrade)
            return
        self.waiting_site[txn] = owner
        if self.deadlock_strategy is DeadlockStrategy.WAIT_DIE:
            if wait_die_should_die(self.global_locks, txn, self._age_key):
                self._cancel_wait(txn)
                self.abort_transaction(txn, AbortReason.WAIT_DIE)
                return
        elif self.deadlock_strategy is DeadlockStrategy.WOUND_WAIT:
            for victim in wound_wait_victims(self.global_locks, txn,
                                             self._age_key):
                self._wound(victim)
        else:
            resolve_deadlocks(self.global_locks, txn,
                              timestamp=self._age_key,
                              abort=lambda v: self.abort_transaction(
                                  v, AbortReason.DEADLOCK))
        if txn not in self.waiting_site:
            return        # granted via a victim's release, or aborted
        self._track_blocked(txn, True)
        self._controller_of(txn).on_block(txn)

    def _wound(self, victim: Transaction) -> None:
        if victim.phase is TxnPhase.UPDATING or victim.wounded:
            return
        if victim in self.waiting_site:
            self.abort_transaction(victim, AbortReason.WOUND_WAIT)
        else:
            victim.wounded = True

    def _cancel_wait(self, txn: Transaction) -> None:
        site = self.waiting_site.pop(txn, None)
        if site is not None:
            grants = self.sites[site].lock_table.cancel_wait(txn)
            self._process_grants(site, grants)

    def _process_grants(self, site: int, grants) -> None:
        for grant in grants:
            self.waiting_site.pop(grant.txn, None)
            self._lock_granted_at(grant.txn, site, grant.was_upgrade)

    def _lock_granted_at(self, txn: Transaction, owner: int,
                         was_upgrade: bool) -> None:
        if txn.is_blocked:
            self._track_blocked(txn, False)
            self._controller_of(txn).on_unblock(txn)
        txn.locks_completed += 1
        if (not txn.is_mature
                and txn.locks_completed >= txn.maturity_threshold):
            self._track_mature(txn)
        self._controller_of(txn).on_lock_granted(txn)
        if was_upgrade:
            self.sites[owner].cpu.request(
                self.params.page_cpu, self._write_cpu_done, txn, owner)
        else:
            self._start_page_read(txn, owner)

    def _start_page_read(self, txn: Transaction, owner: int) -> None:
        site = self.sites[owner]
        disk = site.disks.choose_disk(self._disk_rng)
        site.disks.access(disk, self.params.page_io,
                          self._page_io_done, txn, owner)

    def _page_io_done(self, txn: Transaction, owner: int) -> None:
        self.sites[owner].cpu.request(self.params.page_cpu,
                                      self._page_read_done, txn, owner)

    def _page_read_done(self, txn: Transaction, owner: int) -> None:
        if self.failure_mode and not self._work_is_current(txn, owner):
            return          # stale continuation of an aborted visit
        txn.attempt_reads += 1
        self.collector.on_page_read()
        if self._check_failed(txn):
            return
        page = txn.current_page()
        if page in txn.writeset:
            if self.params.locking_enabled:
                self._request_lock_at(txn, page, owner, True)
            else:
                self.sites[owner].cpu.request(
                    self.params.page_cpu, self._write_cpu_done, txn,
                    owner)
            return
        txn.step_index += 1
        if self.failure_mode and owner != self._home[txn]:
            self._finish_remote_op(txn)
            return
        # The reply travels back to the home site before the next
        # operation is issued from there.
        reply_delay = (self.params.msg_delay
                       if owner != self._home[txn] else 0.0)
        if reply_delay > 0.0:
            self.sim.schedule(reply_delay, self._next_operation, txn)
        else:
            self._next_operation(txn)

    def _write_cpu_done(self, txn: Transaction, owner: int) -> None:
        if self.failure_mode and not self._work_is_current(txn, owner):
            return
        if self._check_failed(txn):
            return
        txn.step_index += 1
        if self.failure_mode and owner != self._home[txn]:
            self._finish_remote_op(txn)
            return
        reply_delay = (self.params.msg_delay
                       if owner != self._home[txn] else 0.0)
        if reply_delay > 0.0:
            self.sim.schedule(reply_delay, self._next_operation, txn)
        else:
            self._next_operation(txn)

    # ------------------------------------------------------------------
    # Deferred updates and distributed commit
    # ------------------------------------------------------------------

    def _next_deferred_write(self, txn: Transaction) -> None:
        if self.failure_mode and self._check_failed(txn):
            return
        if not txn.pending_updates:
            self._prepare_commit(txn)
            return
        page = txn.pending_updates.pop()
        owner = self.partition.site_of(page)
        if self.failure_mode and owner != self._home[txn]:
            self._begin_remote_op(txn, page, owner, "write")
            return
        delay = (self.params.msg_delay
                 if owner != self._home[txn] else 0.0)
        if delay > 0.0:
            self.sim.schedule(delay, self._deferred_write_at, txn, owner)
        else:
            self._deferred_write_at(txn, owner)

    def _deferred_write_at(self, txn: Transaction, owner: int) -> None:
        site = self.sites[owner]
        disk = site.disks.choose_disk(self._disk_rng)
        site.disks.access(disk, self.params.page_io,
                          self._deferred_write_done, txn, owner)

    def _deferred_write_done(self, txn: Transaction, owner: int) -> None:
        if self.failure_mode and not self._work_is_current(txn, owner):
            return
        txn.attempt_writes += 1
        self.collector.on_page_written()
        if self.failure_mode:
            if self._check_failed(txn):
                return
            if owner != self._home[txn]:
                self._finish_remote_op(txn)
                return
        self._next_deferred_write(txn)

    def _touched_sites(self, txn: Transaction) -> List[int]:
        sites = []
        for site in self.sites:
            if site.lock_table.held_pages(txn):
                sites.append(site.site_id)
        return sites

    def _prepare_commit(self, txn: Transaction) -> None:
        touched = self._touched_sites(txn)
        home = self._home[txn]
        remote = [s for s in touched if s != home]
        if remote and self.failure_mode:
            # Real 2PC, always — regardless of ``two_phase_commit``:
            # the collapsed round-trip cannot express in-doubt
            # blocking, which is the point of the failure model.
            self._begin_two_pc(txn, home, remote)
            return
        if remote and self.params.two_phase_commit:
            # Prepare round: one round trip to the farthest participant
            # (messages travel in parallel).
            self.sim.schedule(2.0 * self.params.msg_delay,
                              self._commit, txn, touched)
        else:
            self._commit(txn, touched)

    # ------------------------------------------------------------------
    # Real 2PC (failure mode)
    # ------------------------------------------------------------------

    def _begin_two_pc(self, txn: Transaction, home: int,
                      remote: List[int]) -> None:
        rec = _TwoPC(remote, gen=txn.restarts)
        self._twopc[txn] = rec
        for p in remote:
            rec.calls[p] = self.network.call(
                home, p, self._prepare_at, txn, p, rec.gen,
                on_fail=lambda p=p: self._prepare_failed(txn, p))

    def _prepare_at(self, txn: Transaction, p: int, gen: int) -> None:
        """PREPARE arrives at participant ``p`` (idempotent)."""
        rec = self._twopc.get(txn)
        if rec is None or rec.gen != gen:
            return              # stale: the attempt was already decided
        home = self._home[txn]
        if txn.txn_id in self._indoubt[p]:
            # Duplicate prepare: the vote was lost; vote again.
            self.network.send(p, home, self._vote_at, txn, p, gen)
            return
        self._indoubt[p][txn.txn_id] = _InDoubt(txn, home, self.sim.now)
        self._log_site_event(p, "indoubt_hold", txn_id=txn.txn_id)
        self.sim.schedule(self.params.indoubt_timeout,
                          self._indoubt_timer, p, txn.txn_id)
        self.network.send(p, home, self._vote_at, txn, p, gen)

    def _vote_at(self, txn: Transaction, p: int, gen: int) -> None:
        """A YES vote arrives at the coordinator."""
        rec = self._twopc.get(txn)
        if rec is None or rec.gen != gen:
            return
        call = rec.calls.get(p)
        if call is not None:
            call.settle()
        rec.pending.discard(p)
        if not rec.pending:
            self._decide(txn, "commit")

    def _prepare_failed(self, txn: Transaction, p: int) -> None:
        """A prepare exchange ran out of retries."""
        rec = self._twopc.get(txn)
        if rec is None:
            return
        home = self._home[txn]
        if self._reachable(home, p):
            # The participant is reachable (the votes were lost or the
            # site is merely slow): keep asking rather than aborting a
            # finished transaction's work.
            rec.calls[p] = self.network.call(
                home, p, self._prepare_at, txn, p, rec.gen,
                on_fail=lambda: self._prepare_failed(txn, p))
            return
        self._decide(txn, "abort")

    def _decide(self, txn: Transaction, decision: str) -> None:
        """The coordinator reaches (and durably records) a decision."""
        rec = self._twopc.pop(txn, None)
        if rec is None:
            return
        for call in rec.calls.values():
            call.settle()
        waiters = sum(1 for p in rec.participants
                      if txn.txn_id in self._indoubt[p])
        if waiters:
            # The record is the durable log entry the presumed-abort
            # timer consults; garbage-collected once every in-doubt
            # participant has resolved.
            self.decision_record[txn.txn_id] = decision
            self._decision_waiters[txn.txn_id] = waiters
        if decision == "commit":
            self._commit_2pc(txn, rec)
        else:
            home = self._home[txn]
            for p in rec.participants:
                if txn.txn_id in self._indoubt[p]:
                    # Best-effort notification; the timer is the
                    # guaranteed fallback.
                    self.network.send(home, p, self._decision_at,
                                      p, txn.txn_id)
            self.abort_transaction(txn, AbortReason.REMOTE_TIMEOUT)

    def _commit_2pc(self, txn: Transaction, rec: _TwoPC) -> None:
        """Mirror of :meth:`_commit` for a 2PC transaction: home locks
        release now, participant locks when the decision reaches them."""
        home = self._home[txn]
        self._track_remove(txn)
        txn.phase = TxnPhase.COMMITTED
        self.site_commits[home] += 1
        self.collector.on_commit(
            pages=txn.attempt_reads + txn.attempt_writes,
            response_time=self.sim.now - txn.timestamp,
            restarts=txn.restarts, class_name=txn.class_name)
        self._release_at(txn, home)
        for p in rec.participants:
            if txn.txn_id in self._indoubt[p]:
                self.network.send(home, p, self._decision_at,
                                  p, txn.txn_id)
        controller = self.controllers.for_site(home)
        controller.on_commit(txn)
        controller.on_removed(txn)
        self._home.pop(txn, None)
        delay = self.streams.exponential("think_time",
                                         self.params.think_time)
        self.sim.schedule(delay, self._terminal_submits, txn.terminal_id)

    def _decision_at(self, p: int, txn_id: int) -> None:
        """A decision message arrives at a prepared participant."""
        decision = self.decision_record.get(txn_id, "abort")
        self._resolve_indoubt_entry(p, txn_id, decision, "decision")

    def _resolve_indoubt_entry(self, p: int, txn_id: int,
                               decision: str, source: str) -> None:
        rec = self._indoubt[p].pop(txn_id, None)
        if rec is None:
            return              # duplicate decision / already resolved
        grants = self.sites[p].lock_table.release_all(rec.txn)
        self._process_grants(p, grants)
        self._log_site_event(p, "indoubt_resolved", txn_id=txn_id,
                             detail=f"{decision} via {source}")
        waiters = self._decision_waiters.get(txn_id)
        if waiters is not None:
            if waiters <= 1:
                del self._decision_waiters[txn_id]
                self.decision_record.pop(txn_id, None)
            else:
                self._decision_waiters[txn_id] = waiters - 1
        if decision == "abort":
            sites_left = self._limbo.get(rec.txn)
            if sites_left is not None:
                sites_left.discard(p)
                if not sites_left:
                    del self._limbo[rec.txn]
                    self._schedule_restart(rec.txn)

    def _indoubt_timer(self, p: int, txn_id: int) -> None:
        """Periodic in-doubt resolution check at participant ``p``.

        Reads the coordinator's durable decision record directly — an
        oracle stand-in for a recovery-time inquiry message.  Presumes
        abort only once the coordinator demonstrably holds no volatile
        state for the attempt (its 2PC record is gone without a
        decision, i.e. it crashed before deciding)."""
        rec = self._indoubt[p].get(txn_id)
        if rec is None:
            return
        if not self._site_up[p]:
            # A down site can act on nothing; recovery resolves its
            # residual entries (or this timer does, after it).
            self.sim.schedule(self.params.indoubt_timeout,
                              self._indoubt_timer, p, txn_id)
            return
        decision = self.decision_record.get(txn_id)
        if decision is None and rec.txn in self._twopc:
            self.sim.schedule(self.params.indoubt_timeout,
                              self._indoubt_timer, p, txn_id)
            return
        self._resolve_indoubt_entry(
            p, txn_id, decision if decision is not None else "abort",
            "timer" if decision is not None else "presumed-abort")

    def _commit(self, txn: Transaction, touched: List[int]) -> None:
        home = self._home[txn]
        self._track_remove(txn)
        txn.phase = TxnPhase.COMMITTED
        self.site_commits[home] += 1
        self.collector.on_commit(
            pages=txn.attempt_reads + txn.attempt_writes,
            response_time=self.sim.now - txn.timestamp,
            restarts=txn.restarts, class_name=txn.class_name)
        for site_id in touched:
            if site_id == home:
                self._release_at(txn, site_id)
            else:
                # The commit decision travels to the participant.
                self.sim.schedule(self.params.msg_delay,
                                  self._release_at, txn, site_id)
        controller = self.controllers.for_site(home)
        controller.on_commit(txn)
        controller.on_removed(txn)
        self._home.pop(txn, None)
        delay = self.streams.exponential("think_time",
                                         self.params.think_time)
        self.sim.schedule(delay, self._terminal_submits, txn.terminal_id)

    def _release_at(self, txn: Transaction, site_id: int) -> None:
        grants = self.sites[site_id].lock_table.release_all(txn)
        self._process_grants(site_id, grants)

    # ------------------------------------------------------------------
    # Remote page/write exchanges (failure mode)
    # ------------------------------------------------------------------

    def _begin_remote_op(self, txn: Transaction, page: int, owner: int,
                         kind: str) -> None:
        op = _RemoteOp(txn, owner, page, kind)
        self._inflight[txn] = op
        op.call = self.network.call(
            self._home[txn], owner, self._remote_op_request, op,
            on_fail=lambda: self._remote_op_failed(op))

    def _remote_op_request(self, op: _RemoteOp) -> None:
        """The request arrives at the owning site (idempotent)."""
        if self._inflight.get(op.txn) is not op:
            return              # stale: the visit was torn down
        if op.replied:
            self._send_reply(op)    # the reply was lost; resend it
            return
        if op.started:
            return              # duplicate while work is in progress
        op.started = True
        if op.kind == "page":
            self._request_lock_at(op.txn, op.page, op.owner, False)
        else:
            self._deferred_write_at(op.txn, op.owner)

    def _finish_remote_op(self, txn: Transaction) -> None:
        """The visit's work completed at the owner; reply home."""
        op = self._inflight[txn]
        op.replied = True
        self._send_reply(op)

    def _send_reply(self, op: _RemoteOp) -> None:
        self.network.send(op.owner, self._home[op.txn],
                          self._remote_op_reply, op)

    def _remote_op_reply(self, op: _RemoteOp) -> None:
        """The reply arrives at the home site: continue execution."""
        if self._inflight.get(op.txn) is not op:
            return
        op.call.settle()
        del self._inflight[op.txn]
        if op.kind == "page":
            self._next_operation(op.txn)
        else:
            self._next_deferred_write(op.txn)

    def _remote_op_failed(self, op: _RemoteOp) -> None:
        """The exchange ran out of retries."""
        if self._inflight.get(op.txn) is not op:
            return
        home = self._home[op.txn]
        if self._reachable(home, op.owner):
            # The owner is reachable — the work is simply outstanding
            # (a long lock wait, a deep disk queue, or lost replies).
            # Re-arm rather than abort: retransmitted requests are
            # absorbed by the idempotency guards above.
            op.call = self.network.call(
                home, op.owner, self._remote_op_request, op,
                on_fail=lambda: self._remote_op_failed(op))
            return
        del self._inflight[op.txn]
        self.abort_transaction(
            op.txn, op.txn.doomed if op.txn.doomed is not None
            else AbortReason.REMOTE_TIMEOUT)

    def _work_is_current(self, txn: Transaction, owner: int) -> bool:
        """Is this completion callback the transaction's live work?

        False for stale continuations — device work that finished after
        the visit it belonged to was aborted."""
        home = self._home.get(txn)
        if home is None:
            return False
        op = self._inflight.get(txn)
        if owner == home:
            return op is None
        return (op is not None and op.owner == owner and op.started
                and not op.replied)

    # ------------------------------------------------------------------
    # Aborts
    # ------------------------------------------------------------------

    def abort_transaction(self, txn: Transaction, reason: str) -> None:
        if not self.tracker.is_active(txn):
            raise SimulationError(
                f"cannot abort {txn!r}: not an active transaction")
        home = self._home[txn]
        self._track_remove(txn)
        txn.phase = TxnPhase.ABORTED
        self.collector.on_abort(reason, class_name=txn.class_name)
        self._cancel_wait(txn)
        indoubt_sites: List[int] = []
        if self.failure_mode:
            op = self._inflight.pop(txn, None)
            if op is not None:
                op.call.settle()
            rec = self._twopc.pop(txn, None)
            if rec is not None:
                for call in rec.calls.values():
                    call.settle()
            for site in self.sites:
                if txn.txn_id in self._indoubt[site.site_id]:
                    # Prepared participant locks are untouchable until
                    # the decision (or presumed abort) resolves them.
                    indoubt_sites.append(site.site_id)
                    continue
                if site.lock_table.held_pages(txn):
                    grants = site.lock_table.release_all(txn)
                    self._process_grants(site.site_id, grants)
        else:
            for site in self.sites:
                if site.lock_table.held_pages(txn):
                    grants = site.lock_table.release_all(txn)
                    self._process_grants(site.site_id, grants)
        controller = self.controllers.for_site(home)
        controller.on_abort(txn, reason)
        txn.reset_for_restart()
        if indoubt_sites:
            # Restart is deferred until every in-doubt entry resolves
            # (see _resolve_indoubt_entry), so the next incarnation can
            # never collide with this one's frozen locks.
            self._limbo[txn] = set(indoubt_sites)
        else:
            self._schedule_restart(txn)
        controller.on_removed(txn)

    def _schedule_restart(self, txn: Transaction) -> None:
        if self.failure_mode and not self._site_up[self._home[txn]]:
            self._parked_txns.setdefault(self._home[txn],
                                         []).append(txn)
            return
        self.sim.schedule(self.params.effective_restart_delay,
                          self._arrival, txn)

    # ------------------------------------------------------------------
    # Site liveness, crashes, recovery, degraded mode (failure mode)
    # ------------------------------------------------------------------

    def _is_site_up(self, site: int) -> bool:
        return self._site_up[site]

    def _reachable(self, a: int, b: int) -> bool:
        """Could a message from ``a`` reach ``b`` right now?

        Oracle approximation of "would further retries eventually
        succeed": both endpoints up and no partition severing the pair."""
        if not (self._site_up[a] and self._site_up[b]):
            return False
        now = self.sim.now
        return not any(p.severs(a, b, now)
                       for p in self.network.partitions)

    def _note_heard(self, dst: int, src: int) -> None:
        """Any delivered message doubles as a liveness signal."""
        self._last_heard[dst][src] = self.sim.now

    def _admission_open(self, site: int) -> bool:
        """May ``site`` admit another home transaction right now?"""
        if not self._site_up[site]:
            return False
        if (self.params.degraded_admission and self._degraded[site]
                and self.site_views[site].tracker.n_active
                >= self.params.safe_mode_mpl):
            return False
        return True

    def _heartbeat(self, site: int) -> None:
        """Self-chaining per-site heartbeat + suspect check."""
        if self._site_up[site]:
            for other in range(self.params.num_sites):
                if other != site:
                    self.network.send(site, other,
                                      self._heartbeat_noop)
            self._check_suspects(site)
        self.sim.schedule(self.params.heartbeat_interval,
                          self._heartbeat, site)

    def _heartbeat_noop(self) -> None:
        """Heartbeat payload: delivery itself (``_note_heard``) is the
        signal."""

    def _check_suspects(self, site: int) -> None:
        now = self.sim.now
        heard = self._last_heard[site]
        degraded = any(
            now - heard[other] > self.params.suspect_after
            for other in range(self.params.num_sites) if other != site)
        if degraded == self._degraded[site]:
            return
        self._degraded[site] = degraded
        if degraded:
            self._log_site_event(site, "degraded_enter",
                                 measure=float(self.params.safe_mode_mpl))
        else:
            self._log_site_event(site, "degraded_exit")
            # Re-present the backlog: each queued transaction goes back
            # through _arrival so the controller rules on it normally.
            view = self.site_views[site]
            backlog = []
            while True:
                queued = view.ready_queue.pop()
                if queued is None:
                    break
                backlog.append(queued)
            for txn in backlog:
                self._arrival(txn)

    def _partition_event(self, part, begin: bool) -> None:
        self._log_site_event(
            None, "partition_begin" if begin else "partition_end",
            detail=str(part))

    def _crash_site(self, site: int) -> None:
        """The site loses all volatile state: see the module docstring
        for the crash semantics this implements."""
        if not self._site_up[site]:
            raise SimulationError(f"site {site} crashed while down")
        self._site_up[site] = False
        self._log_site_event(site, "site_crash")
        indoubt_here = self._indoubt[site]
        table = self.sites[site].lock_table
        active = sorted(self.tracker.active_transactions(),
                        key=lambda t: t.txn_id)
        # Pass 1: abort everything waiting at the crashed site, so the
        # lock releases of pass 2 cannot grant work to a dead site.
        for txn in active:
            if self.waiting_site.get(txn) == site:
                self.abort_transaction(txn, AbortReason.SITE_CRASH)
        # Pass 2: holders and home transactions.
        for txn in active:
            if not self.tracker.is_active(txn):
                continue        # aborted in pass 1
            if txn.txn_id in indoubt_here:
                continue        # prepared: locks survive the crash
            home = self._home[txn]
            held_here = bool(table.held_pages(txn))
            if home != site and not held_here:
                continue        # uninvolved (in-flight exchanges to
                #                 this site time out on their own)
            if txn in self._twopc:
                # A coordinator holds no volatile 2PC state across a
                # crash of any site it depends on: tear the attempt
                # down *without* a durable decision — participants
                # presume abort.  (Its own crash is the canonical case;
                # losing plain locks here forces the same abort.)
                rec = self._twopc.pop(txn)
                for call in rec.calls.values():
                    call.settle()
                self.abort_transaction(txn, AbortReason.SITE_CRASH)
                continue
            if txn in self.waiting_site:
                # Waiting (at another site) with state lost here: no
                # continuation is pending, so abort immediately.
                self.abort_transaction(txn, AbortReason.SITE_CRASH)
                continue
            # Running somewhere: flag for abort at the next checkpoint
            # (the wounded-flag discipline), but the crashed site's
            # locks vanish now.
            txn.doomed = AbortReason.SITE_CRASH
            if held_here:
                grants = table.release_all(txn)
                self._process_grants(site, grants)

    def _recover_site(self, site: int) -> None:
        if self._site_up[site]:
            raise SimulationError(f"site {site} recovered while up")
        self._site_up[site] = True
        now = self.sim.now
        # Fresh liveness grace period, so the recovered site does not
        # instantly suspect everyone it could not hear while down.
        self._last_heard[site] = [now] * self.params.num_sites
        self._log_site_event(site, "site_recover")
        # Resolve residual in-doubt entries from the durable decision
        # record (recovery-time inquiry); entries whose coordinator is
        # alive but undecided stay held — their timer keeps checking.
        for txn_id in sorted(self._indoubt[site]):
            rec = self._indoubt[site][txn_id]
            decision = self.decision_record.get(txn_id)
            if decision is None and rec.txn in self._twopc:
                continue
            self._resolve_indoubt_entry(
                site, txn_id,
                decision if decision is not None else "abort",
                "recovery")
        # Doomed home transactions whose reliable exchange settled
        # silently while the site was down are stuck: nothing will ever
        # fire for them again, so abort them now.
        stuck = sorted(
            (txn for txn in self.tracker.active_transactions()
             if self._home.get(txn) == site and txn.doomed is not None),
            key=lambda t: t.txn_id)
        for txn in stuck:
            op = self._inflight.get(txn)
            if op is not None and op.call.settled:
                self.abort_transaction(txn, txn.doomed)
        # Replay parked restarts and terminals.
        for txn in self._parked_txns.pop(site, []):
            self.sim.schedule(self.params.effective_restart_delay,
                              self._arrival, txn)
        for terminal_id in self._parked_terminals.pop(site, []):
            delay = self.streams.exponential("think_time",
                                             self.params.think_time)
            self.sim.schedule(delay, self._terminal_submits, terminal_id)

    def _log_site_event(self, site: Optional[int], action: str,
                        txn_id: Optional[int] = None,
                        measure: Optional[float] = None,
                        detail: str = "") -> None:
        """Record a system-level failure event in the decision log,
        attributed to the pseudo-controller ``siteN`` (or ``network``)."""
        log = self.decision_log
        if log is None:
            return
        from repro.telemetry.decisions import ControllerDecision
        if site is None:
            label, n_active = "network", self.tracker.n_active
        else:
            label = f"site{site}"
            n_active = self.site_views[site].tracker.n_active
        log.record(ControllerDecision(
            time=self.sim.now, controller=label, action=action,
            n_active=n_active, txn_id=txn_id, measure=measure,
            detail=detail))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def remote_fraction(self) -> float:
        total = self.remote_accesses + self.local_accesses
        return self.remote_accesses / total if total else 0.0

    def site_stats(self) -> List[dict]:
        """Per-site utilization and lock-manager statistics."""
        elapsed = self.sim.now
        stats = []
        for site, view in zip(self.sites, self.site_views):
            row = {
                "site": site.site_id,
                "cpu_utilization": site.cpu.utilization(elapsed),
                "disk_utilization": site.disks.utilization(elapsed),
                "lock_requests": site.lock_table.requests,
                "lock_blocks": site.lock_table.blocks,
                "home_active": view.tracker.n_active,
                "home_ready": len(view.ready_queue),
                "home_commits": self.site_commits[site.site_id],
            }
            if self.failure_mode:
                row["up"] = self._site_up[site.site_id]
                row["degraded"] = self._degraded[site.site_id]
                row["in_doubt"] = len(self._indoubt[site.site_id])
            stats.append(row)
        return stats

    def check_invariants(self) -> None:
        for site in self.sites:
            site.lock_table.check_invariants()
        self.tracker.check_invariants()
        for view in self.site_views:
            view.tracker.check_invariants()
        # Site trackers partition the global active set.
        total = sum(v.tracker.n_active for v in self.site_views)
        assert total == self.tracker.n_active
        for txn in self.tracker.active_transactions():
            waiting = txn in self.waiting_site
            assert waiting == txn.is_blocked, (
                f"{txn!r}: blocked flag {txn.is_blocked}, "
                f"waiting map {waiting}")
        if not self.failure_mode:
            return
        for site in self.sites:
            indoubt = self._indoubt[site.site_id]
            for page in site.lock_table.locked_pages():
                for holder in site.lock_table.holders(page):
                    # Every lock belongs to a live transaction or to a
                    # prepared (in-doubt) one — no leaks.
                    assert (self.tracker.is_active(holder)
                            or holder.txn_id in indoubt), (
                        f"site {site.site_id} page {page}: lock held "
                        f"by {holder!r}, neither active nor in-doubt")
            if not self._site_up[site.site_id]:
                # A down site's table holds only prepared state.
                for page in site.lock_table.locked_pages():
                    for holder in site.lock_table.holders(page):
                        assert holder.txn_id in indoubt, (
                            f"down site {site.site_id} holds a "
                            f"non-in-doubt lock for {holder!r}")
        for txn, sites_left in self._limbo.items():
            assert sites_left, f"{txn!r} in limbo with no sites left"
            for p in sites_left:
                assert txn.txn_id in self._indoubt[p], (
                    f"{txn!r} limbo references site {p} without an "
                    f"in-doubt entry")
