"""repro — reproduction of "Load Control for Locking: The 'Half-and-Half'
Approach" (Carey, Krishnamurthi & Livny, 1990).

The package implements the paper's complete simulation study:

* a discrete-event simulation of a centralized DBMS (CPU pool, disk
  array, 2PL lock manager with deadlock detection, deferred updates);
* the Half-and-Half adaptive load controller and every baseline the
  paper compares against (fixed MPL, Tay's rule of thumb, bounded wait
  queues, no control);
* workload generators (homogeneous, multi-class, time-varying) and an
  optional LRU buffer manager;
* batch-means measurement of page throughput and raw page rate;
* an experiment harness that regenerates every figure in the paper.

Quickstart::

    from repro import (SimulationParameters, HalfAndHalfController,
                       run_simulation)

    params = SimulationParameters(num_terms=100, num_batches=5,
                                  batch_time=50.0)
    results = run_simulation(params, HalfAndHalfController())
    print(results.summary_line())
"""

from repro.control import (
    AnalyticMPCController,
    BlockedFractionController,
    BufferAwareAdmission,
    ClassPriorityPolicy,
    CompositeController,
    ConflictRatioController,
    FixedMPLController,
    HalfAndHalfController,
    LoadController,
    MalthusianController,
    NoControlController,
    TayRuleController,
    predict_throughput,
)
from repro.core import MaturityRule, Region, classify_region
from repro.dbms import DBMSSystem, SimulationParameters, Transaction
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    LockManagerError,
    ReproError,
    ShadowDivergence,
    SimulationError,
    VerificationError,
    WorkloadError,
)
from repro.experiments.runner import run_simulation
from repro.lockmgr import (
    BoundedWaitPolicy,
    DeadlockStrategy,
    LockMode,
    LockProtocol,
    LockTable,
    NoWaitPolicy,
    UnboundedWaitPolicy,
)
from repro.metrics import (
    BatchStatistics,
    SimulationResults,
    TraceEvent,
    TraceEventType,
    Tracer,
)
from repro.telemetry import (
    ControllerDecision,
    DecisionLog,
    ProbeSample,
    ProbeScheduler,
    TelemetryConfig,
    TelemetrySession,
)
from repro.verify import (
    InvariantChecker,
    ReferenceLockTable,
    ShadowLockTable,
    VerifyConfig,
    reference_classify_region,
)
from repro.workload import (
    HomogeneousWorkload,
    HotspotWorkload,
    MixedWorkload,
    TimeVaryingWorkload,
    TransactionClass,
    paper_mixed_classes,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticMPCController",
    "BufferAwareAdmission",
    "BlockedFractionController",
    "ClassPriorityPolicy",
    "CompositeController",
    "ConflictRatioController",
    "FixedMPLController",
    "HalfAndHalfController",
    "LoadController",
    "MalthusianController",
    "NoControlController",
    "TayRuleController",
    "predict_throughput",
    "MaturityRule",
    "Region",
    "classify_region",
    "DBMSSystem",
    "SimulationParameters",
    "Transaction",
    "ConfigurationError",
    "ExperimentError",
    "InvariantViolation",
    "LockManagerError",
    "ReproError",
    "ShadowDivergence",
    "SimulationError",
    "VerificationError",
    "WorkloadError",
    "VerifyConfig",
    "InvariantChecker",
    "ReferenceLockTable",
    "ShadowLockTable",
    "reference_classify_region",
    "run_simulation",
    "BoundedWaitPolicy",
    "NoWaitPolicy",
    "LockMode",
    "LockProtocol",
    "LockTable",
    "UnboundedWaitPolicy",
    "BatchStatistics",
    "SimulationResults",
    "TraceEvent",
    "TraceEventType",
    "Tracer",
    "ControllerDecision",
    "DecisionLog",
    "ProbeSample",
    "ProbeScheduler",
    "TelemetryConfig",
    "TelemetrySession",
    "HomogeneousWorkload",
    "HotspotWorkload",
    "MixedWorkload",
    "TimeVaryingWorkload",
    "TransactionClass",
    "paper_mixed_classes",
    "__version__",
]
