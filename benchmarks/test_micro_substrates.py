"""Micro-benchmarks of the substrates (real wall-clock timing).

Unlike the figure benchmarks (which run once and check shapes), these
use pytest-benchmark's timing machinery for what it is good at: keeping
the hot paths of the event kernel, lock table, and full simulator from
silently regressing.
"""

from repro.core.half_and_half import HalfAndHalfController
from repro.dbms.config import SimulationParameters
from repro.experiments.runner import run_simulation
from repro.lockmgr.lock_table import LockTable
from repro.lockmgr.modes import LockMode
from repro.sim.engine import Simulator


def test_micro_event_kernel(benchmark):
    """Schedule-and-fire throughput of the event calendar."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    fired = benchmark(run)
    assert fired == 20_000


def test_micro_lock_table_grant_release(benchmark):
    """Uncontended request/release cycles through the lock table."""

    class T:
        pass

    def run():
        table = LockTable()
        txns = [T() for _ in range(8)]
        for round_no in range(2_000):
            for i, txn in enumerate(txns):
                table.request(txn, (round_no * 8 + i) % 512, LockMode.S)
            for txn in txns:
                table.release_all(txn)
        return table.requests

    requests = benchmark(run)
    assert requests == 2_000 * 8


def test_micro_lock_table_contended(benchmark):
    """Conflicting X requests: queueing, blocking, grant cascades."""

    class T:
        pass

    def run():
        table = LockTable()
        granted = 0
        for _ in range(500):
            txns = [T() for _ in range(6)]
            for txn in txns:
                table.request(txn, 0, LockMode.X)   # one page, all fight
            # Release in order; each release grants the next waiter.
            for txn in txns:
                if not table.is_waiting(txn):
                    granted += len(table.release_all(txn))
        return granted

    benchmark(run)


def test_micro_end_to_end_simulation(benchmark):
    """A complete short base-case run (the figure benches' unit cost)."""

    def run():
        params = SimulationParameters(num_terms=100, warmup_time=5.0,
                                      num_batches=2, batch_time=10.0)
        return run_simulation(params, HalfAndHalfController())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.commits > 0
