"""Benchmark: Figure 7 — Half-and-Half holds the base case at peak."""

from repro.experiments.figures.fig07_base_case import FIGURE


def test_fig07(run_figure):
    result = run_figure(FIGURE)
    hh = result.get("Half-and-Half")
    raw = result.get("2PL (no load control)")

    # Identical at light load (nothing to control).
    assert abs(hh[0] - raw[0]) / raw[0] < 0.15

    # Raw 2PL collapses; Half-and-Half stays at peak.
    assert raw[-1] < 0.80 * max(raw)
    assert hh[-1] > 0.85 * max(hh)
    assert hh[-1] > 1.3 * raw[-1]

    # H&H throughput at saturation is close to the best the raw curve
    # ever achieved (the paper: "keeps the system operating at its peak
    # performance level").
    assert hh[-1] > 0.85 * max(raw)
