"""Simulated-system faults: transient resource-degradation windows.

A :class:`FaultSchedule` injects disturbances *inside* the simulated
DBMS — the disks transiently slow down, the CPUs transiently degrade —
so the load controllers can be measured on the paper's real claim:
holding the operating point through a disturbance, not just at steady
state.  Windows are fixed simulated-time intervals, installed as
ordinary calendar events, so a faulted run is exactly as deterministic
(and cacheable) as a clean one.

Mechanically a window scales the affected resource's
``service_scale`` — every service demand issued while the window is
open takes ``severity`` times longer.  Overlapping windows compose
multiplicatively.  Window transitions are annotated in the telemetry
decision log (actions ``fault_begin`` / ``fault_end``) so exported
runs show exactly when the disturbance held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.errors import ExperimentError
from repro.telemetry.decisions import DecisionAction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.system import DBMSSystem

__all__ = ["SystemFaultKind", "FaultWindow", "FaultSchedule"]


class SystemFaultKind:
    """The injectable simulated-resource disturbances."""

    DISK_SLOWDOWN = "disk_slowdown"
    CPU_DEGRADATION = "cpu_degradation"

    ALL = (DISK_SLOWDOWN, CPU_DEGRADATION)


@dataclass(frozen=True)
class FaultWindow:
    """One disturbance: ``kind`` at ``severity`` over [start, end).

    ``severity`` is the service-time multiplier while the window is
    open: 2.0 means disk accesses (or CPU bursts) take twice as long.
    ``severity == 1.0`` is a no-op window (useful as a sweep baseline).
    """

    kind: str
    start: float
    duration: float
    severity: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SystemFaultKind.ALL:
            raise ExperimentError(
                f"unknown system fault kind {self.kind!r}; "
                f"known: {', '.join(SystemFaultKind.ALL)}")
        if self.start < 0.0:
            raise ExperimentError(
                f"fault window start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ExperimentError(
                f"fault window duration must be > 0, got {self.duration}")
        if self.severity <= 0.0:
            raise ExperimentError(
                f"fault severity must be > 0, got {self.severity}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __str__(self) -> str:
        return (f"{self.kind}×{self.severity:g} "
                f"@[{self.start:g},{self.end:g})")


@dataclass(frozen=True)
class FaultSchedule:
    """A picklable set of fault windows, installed onto one system.

    Carried by :class:`~repro.experiments.parallel.RunSpec` (and part
    of its cache key), handed to
    :func:`~repro.experiments.runner.run_simulation`, which calls
    :meth:`install` after the system is built and before it starts.
    """

    windows: Tuple[FaultWindow, ...] = ()

    def install(self, system: "DBMSSystem") -> None:
        """Schedule begin/end events for every window."""
        for window in self.windows:
            system.sim.schedule_at(window.start, self._begin,
                                   system, window)
            system.sim.schedule_at(window.end, self._end, system, window)

    def _resource(self, system: "DBMSSystem", window: FaultWindow):
        return (system.disks
                if window.kind == SystemFaultKind.DISK_SLOWDOWN
                else system.cpu)

    def _begin(self, system: "DBMSSystem", window: FaultWindow) -> None:
        resource = self._resource(system, window)
        resource.service_scale *= window.severity
        system.controller.log_decision(
            DecisionAction.FAULT_BEGIN,
            measure=window.severity,
            detail=f"{window} open; service_scale="
                   f"{resource.service_scale:g}")

    def _end(self, system: "DBMSSystem", window: FaultWindow) -> None:
        resource = self._resource(system, window)
        resource.service_scale /= window.severity
        system.controller.log_decision(
            DecisionAction.FAULT_END,
            measure=window.severity,
            detail=f"{window} closed; service_scale="
                   f"{resource.service_scale:g}")

    def __bool__(self) -> bool:
        return bool(self.windows)

    def __str__(self) -> str:
        return "; ".join(str(w) for w in self.windows) or "no-faults"
