"""Unit tests for the event tracer."""

from __future__ import annotations

from repro.metrics.trace import TraceEvent, TraceEventType, Tracer


def test_record_and_iterate():
    tracer = Tracer()
    tracer.record(1.0, TraceEventType.ADMIT, 7)
    tracer.record(2.0, TraceEventType.COMMIT, 7, detail="0 restarts")
    events = list(tracer)
    assert len(events) == 2
    assert events[0].event_type is TraceEventType.ADMIT
    assert events[1].detail == "0 restarts"


def test_capacity_drops_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.record(float(i), TraceEventType.ADMIT, i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [e.txn_id for e in tracer] == [2, 3, 4]


def test_unbounded_capacity():
    tracer = Tracer(capacity=None)
    for i in range(1000):
        tracer.record(float(i), TraceEventType.ADMIT, i)
    assert len(tracer) == 1000
    assert tracer.dropped == 0


def test_event_filter():
    tracer = Tracer(event_filter=lambda e: e.event_type
                    is TraceEventType.COMMIT)
    tracer.record(1.0, TraceEventType.ADMIT, 1)
    tracer.record(2.0, TraceEventType.COMMIT, 1)
    assert len(tracer) == 1
    assert tracer.events()[0].event_type is TraceEventType.COMMIT


def test_record_abort_maps_reasons():
    tracer = Tracer()
    tracer.record_abort(1.0, 1, "deadlock")
    tracer.record_abort(2.0, 2, "load_control")
    tracer.record_abort(3.0, 3, "wait_policy")
    types = [e.event_type for e in tracer]
    assert types == [TraceEventType.DEADLOCK_ABORT,
                     TraceEventType.LOAD_CONTROL_ABORT,
                     TraceEventType.WAIT_POLICY_ABORT]


def test_record_abort_unknown_reason_keeps_reason():
    tracer = Tracer()
    tracer.record_abort(1.0, 1, "buffer_eviction")
    (event,) = tracer.events()
    assert event.event_type is TraceEventType.ABORT
    assert event.detail == "buffer_eviction"


def test_capacity_eviction_preserves_order_after_wraparound():
    tracer = Tracer(capacity=2)
    for i in range(10):
        tracer.record(float(i), TraceEventType.ADMIT, i)
    assert [e.txn_id for e in tracer] == [8, 9]
    assert tracer.dropped == 8
    # format() must still work on the deque-backed store.
    assert len(tracer.format(limit=1).splitlines()) == 1


def test_query_by_type_and_txn():
    tracer = Tracer()
    tracer.record(1.0, TraceEventType.ADMIT, 1)
    tracer.record(2.0, TraceEventType.ADMIT, 2)
    tracer.record(3.0, TraceEventType.COMMIT, 1)
    assert len(tracer.events(TraceEventType.ADMIT)) == 2
    assert len(tracer.events(txn_id=1)) == 2
    assert len(tracer.events(TraceEventType.COMMIT, txn_id=2)) == 0
    assert [e.event_type for e in tracer.history_of(1)] == \
        [TraceEventType.ADMIT, TraceEventType.COMMIT]


def test_counts():
    tracer = Tracer()
    tracer.record(1.0, TraceEventType.BLOCK, 1)
    tracer.record(2.0, TraceEventType.BLOCK, 2)
    tracer.record(3.0, TraceEventType.UNBLOCK, 1)
    assert tracer.counts() == {TraceEventType.BLOCK: 2,
                               TraceEventType.UNBLOCK: 1}


def test_format_and_str():
    tracer = Tracer()
    tracer.record(1.5, TraceEventType.BLOCK, 42, detail="page 7")
    text = tracer.format()
    assert "42" in text and "block" in text and "page 7" in text
    assert str(TraceEvent(1.0, TraceEventType.ADMIT, 3)).endswith("admit")


def test_format_limit():
    tracer = Tracer()
    for i in range(10):
        tracer.record(float(i), TraceEventType.ADMIT, i)
    assert len(tracer.format(limit=3).splitlines()) == 3


def test_history_index_matches_full_scan_under_eviction():
    # Interleave three transactions past the retention bound; the
    # per-txn index must agree with a filtered scan of the retained
    # deque, and evicted transactions must vanish entirely.
    tracer = Tracer(capacity=6)
    for i in range(20):
        tracer.record(float(i), TraceEventType.ADMIT, i % 3,
                      detail=str(i))
    retained = list(tracer)
    assert len(retained) == 6 and tracer.dropped == 14
    for txn_id in range(3):
        expected = [e for e in retained if e.txn_id == txn_id]
        assert tracer.history_of(txn_id) == expected
        assert tracer.events(txn_id=txn_id) == expected


def test_history_index_cleans_empty_buckets():
    tracer = Tracer(capacity=2)
    tracer.record(0.0, TraceEventType.ADMIT, 1)
    tracer.record(1.0, TraceEventType.ADMIT, 2)
    tracer.record(2.0, TraceEventType.ADMIT, 3)  # evicts txn 1's only event
    assert tracer.history_of(1) == []
    assert 1 not in tracer._by_txn
    assert [e.txn_id for e in tracer] == [2, 3]


def test_history_index_unbounded_and_missing_txn():
    tracer = Tracer(capacity=None)
    for i in range(100):
        tracer.record(float(i), TraceEventType.ADMIT, i % 5)
    assert len(tracer.history_of(0)) == 20
    assert tracer.history_of(999) == []


def test_history_index_zero_capacity_records_nothing():
    tracer = Tracer(capacity=0)
    tracer.record(0.0, TraceEventType.ADMIT, 1)
    assert len(tracer) == 0
    assert tracer.dropped == 1
    assert tracer.history_of(1) == []
    assert tracer._by_txn == {}


def test_traced_simulation_records_lifecycle(tiny_params):
    from repro.control.no_control import NoControlController
    from repro.experiments.runner import run_simulation
    tracer = Tracer()
    run_simulation(tiny_params, NoControlController(), tracer=tracer)
    counts = tracer.counts()
    assert counts.get(TraceEventType.ARRIVAL, 0) > 0
    assert counts.get(TraceEventType.ADMIT, 0) > 0
    assert counts.get(TraceEventType.COMMIT, 0) > 0
    assert counts.get(TraceEventType.LOCK_GRANT, 0) > 0
    # A transaction's first trace event is its arrival; its commit (if
    # any) comes last.
    first = tracer.history_of(0)
    assert first[0].event_type is TraceEventType.ARRIVAL
    if first[-1].event_type is TraceEventType.COMMIT:
        assert first[-1].time >= first[0].time
