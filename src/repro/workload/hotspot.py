"""Hot-spot (skewed-access) workload.

The paper models non-uniform data sharing indirectly: "the performance
impact of non-uniform data sharing on lock contention can be modeled as
a reduction in the effective database size [Tay85]" (Section 4.3, the
database-size experiment).  This generator models it *directly* with
the classic b–c rule: a fraction ``access_skew`` of page accesses go to
a fraction ``hot_fraction`` of the database (e.g. 80% of accesses to
20% of pages), letting the Half-and-Half controller face genuine
hot-spot contention rather than a shrunken uniform database.

The hot set is the page range ``[0, hot_fraction·db_size)``; pages are
still sampled without replacement within each region.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.dbms.config import SimulationParameters
from repro.dbms.transaction import Transaction
from repro.errors import WorkloadError
from repro.sim.rng import RandomStreams

from repro.workload.base import WorkloadGenerator, sample_readset_size

__all__ = ["HotspotWorkload", "effective_db_size_for_skew"]


def effective_db_size_for_skew(db_size: int, hot_fraction: float,
                               access_skew: float) -> float:
    """Tay-style effective database size of a b–c workload.

    With fraction ``a`` of accesses uniform over ``h·D`` hot pages and
    ``1−a`` uniform over the remaining ``(1−h)·D``, the probability that
    two independent accesses collide on the same page is
    ``a²/(hD) + (1−a)²/((1−h)D)``; the uniform database with the same
    collision probability has size ``1 /`` that value.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise WorkloadError("hot_fraction must be in (0, 1)")
    if not 0.0 <= access_skew <= 1.0:
        raise WorkloadError("access_skew must be in [0, 1]")
    hot_pages = hot_fraction * db_size
    cold_pages = (1.0 - hot_fraction) * db_size
    collision = (access_skew ** 2 / hot_pages
                 + (1.0 - access_skew) ** 2 / cold_pages)
    return 1.0 / collision


class HotspotWorkload(WorkloadGenerator):
    """b–c rule access skew over a partitioned hot/cold database."""

    def __init__(self, streams: RandomStreams,
                 params: SimulationParameters,
                 hot_fraction: float = 0.2,
                 access_skew: float = 0.8):
        super().__init__(streams)
        if not 0.0 < hot_fraction < 1.0:
            raise WorkloadError(
                f"hot_fraction must be in (0, 1), got {hot_fraction}")
        if not 0.0 <= access_skew <= 1.0:
            raise WorkloadError(
                f"access_skew must be in [0, 1], got {access_skew}")
        self.params = params
        self.hot_fraction = hot_fraction
        self.access_skew = access_skew
        self.hot_pages = max(1, int(hot_fraction * params.db_size))
        self.cold_pages = params.db_size - self.hot_pages
        if self.cold_pages < 1:
            raise WorkloadError("hot set covers the whole database")

    @property
    def name(self) -> str:
        return (f"Hotspot({self.access_skew:.0%} of accesses to "
                f"{self.hot_fraction:.0%} of {self.params.db_size} pages)")

    def effective_db_size(self) -> float:
        """The equivalent uniform database size of this skew."""
        return effective_db_size_for_skew(
            self.params.db_size, self.hot_fraction, self.access_skew)

    def _split_sizes(self, readset_size: int) -> Tuple[int, int]:
        """How many of this transaction's pages are hot vs cold."""
        rng = self.streams.stream("hotspot_split")
        hot = sum(1 for _ in range(readset_size)
                  if rng.random() < self.access_skew)
        hot = min(hot, self.hot_pages)
        cold = min(readset_size - hot, self.cold_pages)
        return hot, cold

    def make_transaction(self, txn_id: int, terminal_id: int,
                         now: float) -> Transaction:
        p = self.params
        size = sample_readset_size(self.streams, p.tran_size)
        n_hot, n_cold = self._split_sizes(size)
        hot_choice = self.streams.stream("hotspot_hot_pages")
        cold_choice = self.streams.stream("hotspot_cold_pages")
        readset: List[int] = hot_choice.sample(range(self.hot_pages),
                                               n_hot)
        readset.extend(cold_choice.sample(
            range(self.hot_pages, p.db_size), n_cold))
        # Interleave hot and cold accesses deterministically by
        # shuffling with a dedicated stream (access order matters for
        # lock-hold times).
        self.streams.stream("hotspot_order").shuffle(readset)
        writeset: Set[int] = {
            page for page in readset
            if self.streams.bernoulli("write_choice", p.write_prob)}
        return Transaction(txn_id=txn_id, terminal_id=terminal_id,
                           timestamp=now, readset=readset,
                           writeset=writeset, class_name="hotspot")
