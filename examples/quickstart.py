#!/usr/bin/env python3
"""Quickstart: run the paper's base case with and without load control.

This is the 60-second tour of the library: build the Table 2 base
configuration, run raw 2PL (which thrashes at 200 terminals) and the
Half-and-Half controller (which doesn't), and print the comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    HalfAndHalfController,
    NoControlController,
    SimulationParameters,
    run_simulation,
)
from repro.experiments.reporting import format_results_table


def main() -> None:
    # The paper's Table 2 base case, with a shortened measurement
    # window so the example finishes in a few seconds.  For paper-grade
    # numbers use num_batches=20, batch_time=120.
    params = SimulationParameters(
        num_terms=200,        # heavy pressure: thrashing territory
        warmup_time=30.0,
        num_batches=5,
        batch_time=30.0,
    )

    print("Simulating a centralized DBMS: 1 CPU, 5 disks, 1000-page DB,")
    print("8-page transactions (25% written), 200 terminals, zero think "
          "time.\n")

    raw = run_simulation(params, NoControlController())
    controlled = run_simulation(params, HalfAndHalfController())

    print(format_results_table(
        [raw, controlled],
        title="Base case at 200 terminals (pages/second):"))
    print()

    gain = (controlled.page_throughput.mean / raw.page_throughput.mean
            - 1.0) * 100.0
    print(f"Half-and-Half throughput gain over raw 2PL: {gain:+.0f}%")
    print(f"Raw 2PL ran all {raw.avg_mpl:.0f} transactions at once and "
          f"aborted {raw.aborts} of them;")
    print(f"Half-and-Half self-selected an average MPL of "
          f"{controlled.avg_mpl:.1f} and kept the system at its peak.")


if __name__ == "__main__":
    main()
