"""Write-probability sweep (Section 4.3, figure omitted in the paper).

"We also performed a series of simulations that varied the write
probability ...  the Half-and-Half algorithm performed well over the
entire range, while each fixed MPL was only optimal or near-optimal for
a subset of the range."  The paper omits the figure; we reconstruct it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.control.fixed_mpl import FixedMPLController
from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.figures.base import (FigureResult, FigureSpec,
                                            RunSpec, simulate_specs)
from repro.experiments.scales import Scale
from repro.experiments.studies import REFERENCE_MPLS, base_params
from repro.experiments.sweeps import default_mpl_candidates, select_optimal_mpl

__all__ = ["FIGURE", "run", "write_prob_points"]


def write_prob_points(scale: Scale) -> List[float]:
    fine = [0.0, 0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0]
    coarse = [0.0, 0.25, 1.0]
    return scale.pick(fine, coarse)


def run(scale: Scale) -> FigureResult:
    probs = write_prob_points(scale)
    series: Dict[str, List[float]] = {
        "Half-and-Half": [], "Optimal MPL": []}
    for mpl in REFERENCE_MPLS:
        series[f"MPL {mpl}"] = []
    optimal_mpls: Dict[float, int] = {}

    specs, index = [], []
    for w in probs:
        params = base_params(scale, write_prob=w)
        specs.append(RunSpec(params=params,
                             controller_factory=HalfAndHalfController))
        index.append(("hh", w, None))
        candidates = default_mpl_candidates(params.num_terms,
                                            dense=scale.dense)
        for mpl in candidates:
            specs.append(RunSpec(params=params,
                                 controller_factory=FixedMPLController,
                                 controller_args=(mpl,)))
            index.append(("candidate", w, mpl))
        for mpl in REFERENCE_MPLS:
            specs.append(RunSpec(params=params,
                                 controller_factory=FixedMPLController,
                                 controller_args=(mpl,)))
            index.append(("reference", w, mpl))
    results = simulate_specs(specs, label="ext_write_prob")

    by_prob_candidates: Dict[float, Dict[int, object]] = {}
    reference: Dict[tuple, object] = {}
    for (kind, w, mpl), result in zip(index, results):
        if kind == "hh":
            series["Half-and-Half"].append(result.page_throughput.mean)
        elif kind == "candidate":
            by_prob_candidates.setdefault(w, {})[mpl] = result
        else:
            reference[(w, mpl)] = result
    for w in probs:
        best = select_optimal_mpl(by_prob_candidates[w])
        optimal_mpls[w] = best
        series["Optimal MPL"].append(
            by_prob_candidates[w][best].page_throughput.mean)
        for mpl in REFERENCE_MPLS:
            series[f"MPL {mpl}"].append(
                reference[(w, mpl)].page_throughput.mean)
    return FigureResult(
        figure_id="ext_write_prob",
        title="Page Throughput vs write probability (200 terminals)",
        x_label="write probability",
        y_label="pages/second",
        x_values=probs,
        series=series,
        extras={"optimal_mpl": optimal_mpls},
    )


FIGURE = FigureSpec(
    figure_id="ext_write_prob",
    title="Write-probability sweep (omitted figure, Section 4.3)",
    paper_claim=("Half-and-Half good across the whole range; each fixed "
                 "MPL only near-optimal on part of it"),
    run=run,
    tags=("extension", "write-prob"),
)
