"""Load-controller interface.

A load controller owns the transaction admission decision and may abort
active transactions as a corrective action.  The DBMS system invokes the
hooks below at the state transitions the paper identifies as decision
points (arrival, lock request, commit), plus bookkeeping hooks.

Controllers interact with the system through a narrow surface:

* ``system.tracker`` — :class:`repro.core.state_tracker.StateTracker`
  population counts;
* ``system.try_admit_one()`` — admit the head of the external ready
  queue, returning False if the queue is empty;
* ``system.abort_transaction(txn, reason)`` — abort an active
  transaction (it is re-queued at the back of the ready queue);
* ``system.lock_table`` — for victim eligibility checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING


if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.transaction import Transaction
    from repro.dbms.system import DBMSSystem

__all__ = ["LoadController"]


class LoadController:
    """Base class: admits everything, reacts to nothing."""

    def __init__(self) -> None:
        self.system: "DBMSSystem" = None  # type: ignore[assignment]

    def attach(self, system: "DBMSSystem") -> None:
        """Bind to the system before the simulation starts."""
        self.system = system

    @property
    def name(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------
    # Decision hooks
    # ------------------------------------------------------------------

    def want_admit(self, txn: "Transaction") -> bool:
        """Admit this arriving (or restarting) transaction right now?

        Returning False parks it in the external ready queue; it then only
        enters when the controller later calls ``system.try_admit_one()``.
        """
        return True

    def on_admit(self, txn: "Transaction") -> None:
        """A transaction just became active."""

    def on_lock_granted(self, txn: "Transaction") -> None:
        """A lock request by ``txn`` was granted (immediately or after a
        wait).  The Half-and-Half algorithm admits from the ready queue
        here while the system is Underloaded."""

    def on_block(self, txn: "Transaction") -> None:
        """A lock request by ``txn`` blocked (and survived deadlock
        resolution).  The Half-and-Half algorithm aborts victims here
        while the system is Overloaded."""

    def on_unblock(self, txn: "Transaction") -> None:
        """A previously blocked transaction was granted its lock."""

    def on_commit(self, txn: "Transaction") -> None:
        """``txn`` committed (it has already left the active set)."""

    def on_abort(self, txn: "Transaction", reason: str) -> None:
        """``txn`` was aborted (it has already left the active set)."""

    def on_removed(self, txn: "Transaction") -> None:
        """``txn`` left the active set for any reason (after commit or
        abort hooks).  Controllers that maintain a fixed MPL top up the
        system here."""
