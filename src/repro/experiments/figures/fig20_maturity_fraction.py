"""Figure 20: sensitivity to the maturity fraction.

The base case run under Half-and-Half with the maturity definition
varied from 10% to 50% of a transaction's (estimated) lock requests.
The paper's claim: "the algorithm is not particularly sensitive to this
parameter", so it tolerates significant estimation errors.
"""

from __future__ import annotations

from typing import List

from repro.core.half_and_half import HalfAndHalfController
from repro.core.maturity import MaturityRule
from repro.experiments.figures.base import (FigureResult, FigureSpec,
                                            RunSpec, simulate_specs)
from repro.experiments.scales import Scale
from repro.experiments.studies import base_params

__all__ = ["FIGURE", "run", "fraction_points"]


def fraction_points(scale: Scale) -> List[float]:
    fine = [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50]
    coarse = [0.10, 0.25, 0.50]
    return scale.pick(fine, coarse)


def run(scale: Scale) -> FigureResult:
    fractions = fraction_points(scale)
    params = base_params(scale)
    specs = [RunSpec(params=params,
                     controller_factory=HalfAndHalfController,
                     maturity_rule=MaturityRule(fraction=fraction))
             for fraction in fractions]
    results = simulate_specs(specs, label="fig20")
    thruput = [r.page_throughput.mean for r in results]
    avg_mpl = [r.avg_mpl for r in results]
    return FigureResult(
        figure_id="fig20",
        title="Page Throughput vs maturity fraction (base case, H&H)",
        x_label="maturity fraction",
        y_label="pages/second",
        x_values=fractions,
        series={"Half-and-Half": thruput},
        extras={"avg_mpl": avg_mpl},
    )


FIGURE = FigureSpec(
    figure_id="fig20",
    title="Maturity-fraction sensitivity",
    paper_claim=("throughput is insensitive to the maturity fraction "
                 "between 10% and 50%"),
    run=run,
    tags=("sensitivity", "maturity"),
)
