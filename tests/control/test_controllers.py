"""Unit tests for the baseline load controllers (fixed MPL, no-control,
composite, buffer-aware) against a fake system."""

from __future__ import annotations

import pytest

from repro.control.base import LoadController
from repro.control.composite import BufferAwareAdmission, CompositeController
from repro.control.fixed_mpl import FixedMPLController
from repro.control.no_control import NoControlController
from repro.core.state_tracker import StateTracker
from repro.dbms.transaction import Transaction
from repro.errors import ConfigurationError


def _txn(i, reads=4):
    return Transaction(txn_id=i, terminal_id=0, timestamp=float(i),
                       readset=list(range(reads)), writeset=set())


class FakeReadyQueue(list):
    def peek(self):
        return self[0] if self else None


class FakeSystem:
    def __init__(self):
        self.tracker = StateTracker()
        self.ready_queue = FakeReadyQueue()
        self.admitted = []

    def try_admit_one(self):
        if not self.ready_queue:
            return False
        txn = self.ready_queue.pop(0)
        self.admitted.append(txn)
        self.tracker.add(txn, 0.0)
        return True


def _attach(controller):
    controller.attach(FakeSystem())
    return controller


# ----------------------------------------------------------------------
# FixedMPLController
# ----------------------------------------------------------------------

def test_fixed_mpl_admits_below_limit():
    c = _attach(FixedMPLController(2))
    assert c.want_admit(_txn(1))
    c.system.tracker.add(_txn(10), 0.0)
    assert c.want_admit(_txn(2))
    c.system.tracker.add(_txn(11), 0.0)
    assert not c.want_admit(_txn(3))


def test_fixed_mpl_tops_up_on_removal():
    c = _attach(FixedMPLController(2))
    active = [_txn(10), _txn(11)]
    for t in active:
        c.system.tracker.add(t, 0.0)
    c.system.ready_queue.extend([_txn(1), _txn(2), _txn(3)])
    c.system.tracker.remove(active[0], 1.0)
    c.on_removed(active[0])
    assert len(c.system.admitted) == 1      # back to the limit, no more


def test_fixed_mpl_invalid_limit():
    with pytest.raises(ConfigurationError):
        FixedMPLController(0)


def test_fixed_mpl_name():
    assert FixedMPLController(35).name == "FixedMPL(35)"


# ----------------------------------------------------------------------
# NoControlController
# ----------------------------------------------------------------------

def test_no_control_always_admits():
    c = _attach(NoControlController())
    for i in range(50):
        c.system.tracker.add(_txn(100 + i), 0.0)
    assert c.want_admit(_txn(1))


def test_no_control_drains_queue_on_removal():
    c = _attach(NoControlController())
    c.system.ready_queue.extend([_txn(1), _txn(2)])
    c.on_removed(_txn(99))
    assert len(c.system.admitted) == 2


# ----------------------------------------------------------------------
# Base class
# ----------------------------------------------------------------------

def test_base_controller_admits_and_ignores_hooks():
    c = _attach(LoadController())
    t = _txn(1)
    assert c.want_admit(t)
    # None of these should raise.
    c.on_admit(t)
    c.on_lock_granted(t)
    c.on_block(t)
    c.on_unblock(t)
    c.on_commit(t)
    c.on_abort(t, "deadlock")
    c.on_removed(t)
    assert c.name == "LoadController"


# ----------------------------------------------------------------------
# CompositeController
# ----------------------------------------------------------------------

class _Veto(LoadController):
    def __init__(self, allow):
        super().__init__()
        self.allow = allow
        self.events = []

    def want_admit(self, txn):
        self.events.append("ask")
        return self.allow

    def on_commit(self, txn):
        self.events.append("commit")


def test_composite_requires_unanimity():
    yes, no = _Veto(True), _Veto(False)
    c = _attach(CompositeController([yes, no]))
    assert not c.want_admit(_txn(1))
    both_yes = _attach(CompositeController([_Veto(True), _Veto(True)]))
    assert both_yes.want_admit(_txn(1))


def test_composite_stops_asking_after_refusal():
    first, second = _Veto(False), _Veto(True)
    c = _attach(CompositeController([first, second]))
    c.want_admit(_txn(1))
    assert first.events == ["ask"]
    assert second.events == []       # never consulted


def test_composite_fans_out_hooks():
    children = [_Veto(True), _Veto(True)]
    c = _attach(CompositeController(children))
    c.on_commit(_txn(1))
    assert all(ch.events == ["commit"] for ch in children)


def test_composite_attaches_children():
    child = _Veto(True)
    c = CompositeController([child])
    system = FakeSystem()
    c.attach(system)
    assert child.system is system


def test_composite_requires_children():
    with pytest.raises(ConfigurationError):
        CompositeController([])


def test_composite_name():
    c = CompositeController([FixedMPLController(5), NoControlController()])
    assert "FixedMPL(5)" in c.name and "NoControl" in c.name


# ----------------------------------------------------------------------
# BufferAwareAdmission
# ----------------------------------------------------------------------

def test_buffer_aware_admits_within_budget():
    c = _attach(BufferAwareAdmission(buf_size=10))
    assert c.want_admit(_txn(1, reads=6))
    c.system.tracker.add(_txn(10, reads=6), 0.0)
    assert not c.want_admit(_txn(2, reads=6))   # 6 + 6 > 10
    assert c.want_admit(_txn(3, reads=4))       # 6 + 4 <= 10


def test_buffer_aware_tops_up_within_budget():
    c = _attach(BufferAwareAdmission(buf_size=10))
    c.system.ready_queue.extend([_txn(1, reads=6), _txn(2, reads=6)])
    c.on_removed(_txn(99))
    assert len(c.system.admitted) == 1          # second would overflow


def test_buffer_aware_validation():
    with pytest.raises(ConfigurationError):
        BufferAwareAdmission(buf_size=0)
    with pytest.raises(ConfigurationError):
        BufferAwareAdmission(buf_size=10, capacity_fraction=0.0)
    with pytest.raises(ConfigurationError):
        BufferAwareAdmission(buf_size=10, capacity_fraction=1.5)
