"""Extension: blocking vs no-waiting concurrency control.

The paper grounds its thrashing taxonomy in [Agra87a]'s comparison of
blocking and immediate-restart concurrency control under resource
contention.  This experiment puts the four conflict-handling policies
side by side on the base case at full pressure: plain blocking 2PL,
no-waiting (abort on any conflict), the bounded wait queue, and
blocking 2PL under Half-and-Half load control.
"""

from repro.control.no_control import NoControlController
from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import run_simulation
from repro.experiments.studies import base_params
from repro.lockmgr.wait_policy import BoundedWaitPolicy, NoWaitPolicy


def test_ext_cc_alternatives(benchmark, scale):
    def run():
        params = base_params(scale)
        return {
            "blocking": run_simulation(params, NoControlController()),
            "no-wait": run_simulation(params, NoControlController(),
                                      wait_policy=NoWaitPolicy()),
            "bounded-1": run_simulation(
                params, NoControlController(),
                wait_policy=BoundedWaitPolicy(limit=1)),
            "hh": run_simulation(params, HalfAndHalfController()),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_results_table(
        list(results.values()),
        title="Conflict handling at 200 terminals (base case)"))

    blocking = results["blocking"]
    no_wait = results["no-wait"]
    hh = results["hh"]

    # No-waiting never deadlocks but restarts constantly: its wasted
    # work dwarfs blocking 2PL's.
    assert no_wait.aborts > blocking.aborts
    assert no_wait.wasted_page_rate > blocking.wasted_page_rate

    # Under resource contention, adaptive load control beats both raw
    # conflict-handling strategies.
    assert hh.page_throughput.mean > blocking.page_throughput.mean
    assert hh.page_throughput.mean > no_wait.page_throughput.mean
