"""Latency analytics: exact percentiles, critical paths, blame tables.

OLTP performance is judged by response-time *tails*, not means — an SLA
speaks of p95s and p99s — and thrashing is ultimately a latency story:
a transaction slides into State 3 when lock-wait time comes to dominate
its service time.  This module turns the span timelines of
:mod:`repro.telemetry.spans` into three deterministic artifacts:

* :class:`LatencyHistogram` — an exact streaming histogram.  Values
  are retained (one float per committed transaction — bounded by the
  run's commit count), so quantiles are *exact* nearest-rank order
  statistics rather than sketch approximations, and byte-identical
  run to run.
* critical-path breakdown — what fraction of committed transactions'
  lives went to lock waits vs CPU/disk service vs ready-queue time vs
  restart gaps.
* wait-chain blame — blocker→blocked edges aggregated into top
  blockers (by induced wait seconds), hottest pages, and the mean
  wait-chain depth at block time.

Everything here is plain arithmetic over simulated-time quantities, so
``latency.json`` is deterministic and byte-identical between serial
and process-pool execution of the same spec.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "LatencyAnalytics", "QUANTILE_LABELS"]

# The quantiles every summary reports, in rendering order.
QUANTILE_LABELS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99),
)


class LatencyHistogram:
    """Exact, deterministic streaming histogram of a latency metric.

    Values arrive one at a time (:meth:`add`); quantiles are exact
    nearest-rank order statistics over everything seen so far.  The
    sorted view is cached and invalidated on insert, so a read-heavy
    phase (report rendering) sorts once.
    """

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0

    def add(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)
        self._sum += value
        self._sorted = None

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return self._sum / len(self._values) if self._values else 0.0

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile (0 < q <= 1); 0.0 when empty."""
        ordered = self._ordered()
        if not ordered:
            return 0.0
        # Nearest-rank: the smallest value with at least ceil(q*n)
        # observations at or below it.
        rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
        return ordered[rank - 1]

    @property
    def min(self) -> float:
        ordered = self._ordered()
        return ordered[0] if ordered else 0.0

    @property
    def max(self) -> float:
        ordered = self._ordered()
        return ordered[-1] if ordered else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable summary: count, mean, extrema, quantiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **{label: self.quantile(q) for label, q in QUANTILE_LABELS},
        }


class LatencyAnalytics:
    """Aggregates span timelines into latency + blame statistics.

    Fed by the :class:`~repro.telemetry.spans.SpanRecorder`:
    :meth:`on_block` and :meth:`credit_wait` per lock wait,
    :meth:`on_commit` once per committed transaction.
    """

    # Phase keys, in rendering order; "other" absorbs event-scheduling
    # slack (zero-delay admission hops) so the fractions sum to 1.
    PHASES = ("lock_wait", "cpu", "disk", "ready_wait", "restart_gap",
              "other")

    def __init__(self) -> None:
        self.committed = 0
        self.restarts_of_committed = 0
        self.life_seconds = 0.0
        self.phase_seconds: Dict[str, float] = {
            phase: 0.0 for phase in self.PHASES}
        self.response = LatencyHistogram()
        self.lock_wait = LatencyHistogram()
        self.service = LatencyHistogram()
        self.ready_wait = LatencyHistogram()
        # Blame: blocker txn id -> [block events, induced wait seconds].
        self.blockers: Dict[int, List[float]] = {}
        # Contested page -> [block events, wait seconds].
        self.pages: Dict[int, List[float]] = {}
        self.block_events = 0
        self.depth_sum = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def on_block(self, blocker: Optional[int], page: int,
                 depth: int) -> None:
        """One blocked lock request, at block time."""
        self.block_events += 1
        self.depth_sum += depth
        if depth > self.max_depth:
            self.max_depth = depth
        if blocker is not None:
            self.blockers.setdefault(blocker, [0, 0.0])[0] += 1
        self.pages.setdefault(page, [0, 0.0])[0] += 1

    def credit_wait(self, blocker: Optional[int], page: Optional[int],
                    seconds: float) -> None:
        """Attribute a finished lock wait to its blocker and page."""
        if blocker is not None:
            self.blockers.setdefault(blocker, [0, 0.0])[1] += seconds
        if page is not None:
            self.pages.setdefault(page, [0, 0.0])[1] += seconds

    def on_commit(self, life: float, lock_wait: float, cpu: float,
                  disk: float, ready_wait: float, restart_gap: float,
                  restarts: int) -> None:
        """Fold one committed transaction's timeline into the totals."""
        self.committed += 1
        self.restarts_of_committed += restarts
        self.life_seconds += life
        accounted = lock_wait + cpu + disk + ready_wait + restart_gap
        self.phase_seconds["lock_wait"] += lock_wait
        self.phase_seconds["cpu"] += cpu
        self.phase_seconds["disk"] += disk
        self.phase_seconds["ready_wait"] += ready_wait
        self.phase_seconds["restart_gap"] += restart_gap
        self.phase_seconds["other"] += max(0.0, life - accounted)
        self.response.add(life)
        self.lock_wait.add(lock_wait)
        self.service.add(cpu + disk)
        self.ready_wait.add(ready_wait)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def mean_chain_depth(self) -> float:
        """Mean wait-chain depth observed at block time."""
        return (self.depth_sum / self.block_events
                if self.block_events else 0.0)

    def phase_fractions(self) -> Dict[str, float]:
        """Fraction of committed-transaction life spent in each phase."""
        if self.life_seconds <= 0.0:
            return {phase: 0.0 for phase in self.PHASES}
        return {phase: self.phase_seconds[phase] / self.life_seconds
                for phase in self.PHASES}

    def top_blockers(self, limit: int = 10
                     ) -> List[Tuple[int, int, float]]:
        """``(txn_id, times_blocking, induced_wait_seconds)`` rows,
        worst blocker (most induced wait, ties on id) first."""
        ranked = sorted(
            ((txn_id, int(count), seconds)
             for txn_id, (count, seconds) in self.blockers.items()),
            key=lambda row: (-row[2], -row[1], row[0]))
        return ranked[:limit]

    def hottest_pages(self, limit: int = 10
                      ) -> List[Tuple[int, int, float]]:
        """``(page, block_events, wait_seconds)`` rows, hottest first."""
        ranked = sorted(
            ((page, int(count), seconds)
             for page, (count, seconds) in self.pages.items()),
            key=lambda row: (-row[2], -row[1], row[0]))
        return ranked[:limit]

    def to_dict(self) -> Dict[str, Any]:
        """The deterministic ``latency.json`` payload."""
        return {
            "committed": self.committed,
            "restarts_of_committed": self.restarts_of_committed,
            "response": self.response.summary(),
            "lock_wait": self.lock_wait.summary(),
            "service": self.service.summary(),
            "ready_wait": self.ready_wait.summary(),
            "phase_seconds": {phase: self.phase_seconds[phase]
                              for phase in self.PHASES},
            "phase_fractions": self.phase_fractions(),
            "blame": {
                "block_events": self.block_events,
                "mean_chain_depth": self.mean_chain_depth,
                "max_chain_depth": self.max_depth,
                "top_blockers": [
                    {"txn_id": txn_id, "blocks": count,
                     "wait_seconds": seconds}
                    for txn_id, count, seconds in self.top_blockers()],
                "hottest_pages": [
                    {"page": page, "blocks": count,
                     "wait_seconds": seconds}
                    for page, count, seconds in self.hottest_pages()],
            },
        }
