"""Disk array model: one FCFS queue per disk, uniform declustering.

From the paper (Section 3): "Our I/O system model is a probabilistic model
of a database that is declustered across all of the disks.  There is a
queue associated with each disk; when a transaction needs service, it
chooses a disk (at random, with all disks being equally likely) and waits
in the queue associated with the selected disk.  The service discipline for
the disk queues in the model is also FCFS."
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator

__all__ = ["DiskArray"]

_Request = Tuple[float, Callable[..., Any], tuple]


class _Disk:
    """A single disk: one server, FCFS queue."""

    __slots__ = ("busy", "queue", "busy_time", "requests_served")

    def __init__(self) -> None:
        self.busy = False
        self.queue: Deque[_Request] = deque()
        self.busy_time = 0.0
        self.requests_served = 0


class DiskArray:
    """A collection of independent FCFS disks."""

    def __init__(self, sim: Simulator, num_disks: int):
        if num_disks < 1:
            raise ConfigurationError(
                f"num_disks must be >= 1, got {num_disks}")
        self._sim = sim
        self.num_disks = num_disks
        self._disks: List[_Disk] = [_Disk() for _ in range(num_disks)]
        # Transient degradation knob (see repro.faultinject.system):
        # accesses issued while the scale is s take s times longer.
        # Applied at access time; queued/in-service work is unaffected.
        self.service_scale = 1.0

    def choose_disk(self, rng: random.Random) -> int:
        """Pick a disk uniformly at random (the paper's declustering)."""
        return rng.randrange(self.num_disks)

    def queue_length(self, disk_index: int) -> int:
        """Waiting requests (not in service) at one disk."""
        return len(self._disks[disk_index].queue)

    def total_queue_length(self) -> int:
        """Waiting requests across all disks."""
        return sum(len(d.queue) for d in self._disks)

    def requests_served(self) -> int:
        """Completed I/Os across all disks."""
        return sum(d.requests_served for d in self._disks)

    @property
    def busy_time(self) -> float:
        """Total server-busy seconds summed across all disks."""
        return sum(d.busy_time for d in self._disks)

    def utilization(self, elapsed: float) -> float:
        """Average fraction of disks busy over ``elapsed`` seconds."""
        if elapsed <= 0.0:
            return 0.0
        busy = sum(d.busy_time for d in self._disks)
        return busy / (elapsed * self.num_disks)

    def access(self, disk_index: int, service_time: float,
               callback: Callable[..., Any], *args: Any) -> None:
        """Request ``service_time`` seconds of I/O on a specific disk."""
        if service_time < 0.0:
            raise ConfigurationError(
                f"negative disk service time: {service_time}")
        if not 0 <= disk_index < self.num_disks:
            raise ConfigurationError(
                f"disk index {disk_index} out of range "
                f"[0, {self.num_disks})")
        service_time *= self.service_scale
        disk = self._disks[disk_index]
        if disk.busy:
            disk.queue.append((service_time, callback, args))
        else:
            disk.busy = True
            disk.busy_time += service_time
            # post(): completions are never cancelled, so no handle.
            self._sim.post(service_time, self._complete,
                           disk, callback, args)

    def access_random(self, rng: random.Random, service_time: float,
                      callback: Callable[..., Any], *args: Any) -> None:
        """``choose_disk`` + ``access`` fused for the per-page hot path.

        Draws exactly one disk index from ``rng`` — the same stream
        consumption as the two-call form — and skips the index range
        check (the index is generated in range by construction).
        ``randrange(n)`` for a positive int n is a validating wrapper
        around ``Random._randbelow(n)``; calling the latter directly
        consumes identical random bits, so trajectories stay
        bit-identical to :meth:`choose_disk`.
        """
        if service_time < 0.0:
            raise ConfigurationError(
                f"negative disk service time: {service_time}")
        service_time *= self.service_scale
        disk = self._disks[rng._randbelow(self.num_disks)]
        if disk.busy:
            disk.queue.append((service_time, callback, args))
        else:
            disk.busy = True
            disk.busy_time += service_time
            self._sim.post(service_time, self._complete,
                           disk, callback, args)

    def _complete(self, disk: _Disk,
                  callback: Callable[..., Any], args: tuple) -> None:
        disk.requests_served += 1
        if disk.queue:
            # Start the next waiter before running the completion callback
            # so FCFS order is preserved if the callback re-enters.  The
            # start bookkeeping is spelled out inline — this runs once
            # per I/O-bound calendar event.
            service_time, queued_callback, queued_args = (
                disk.queue.popleft())
            disk.busy_time += service_time
            self._sim.post(service_time, self._complete,
                           disk, queued_callback, queued_args)
        else:
            disk.busy = False
        callback(*args)
