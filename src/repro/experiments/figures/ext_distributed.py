"""Distributed load control sweep (Section 5 future work, no paper
figure).

Page throughput of a four-site cluster versus the number of terminals,
with and without per-site Half-and-Half controllers.  The expected
shape mirrors Figure 7 at cluster scale: the uncontrolled cluster
rises, peaks, and collapses; per-site load control holds the cluster at
its peak.
"""

from __future__ import annotations

from typing import List

from repro.distributed.config import DistributedParameters
from repro.distributed.controllers import (
    make_half_and_half_sites,
    make_no_control_sites,
)
from repro.distributed.runner import run_distributed_simulation
from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.scales import Scale

__all__ = ["FIGURE", "run"]

NUM_SITES = 4
LOCALITY = 0.8


def _terminal_points(scale: Scale) -> List[int]:
    fine = [20, 40, 80, 120, 160, 200, 280, 400]
    coarse = [20, 80, 200, 400]
    return scale.pick(fine, coarse)


def run(scale: Scale) -> FigureResult:
    points = _terminal_points(scale)
    raw_curve = []
    hh_curve = []
    hh_mpl = []
    for terms in points:
        params = DistributedParameters(
            num_sites=NUM_SITES, num_terms=terms, locality=LOCALITY,
            warmup_time=scale.warmup_time,
            num_batches=scale.num_batches,
            batch_time=scale.batch_time)
        raw_curve.append(
            run_distributed_simulation(
                params, make_no_control_sites(NUM_SITES))
            .page_throughput.mean)
        hh = run_distributed_simulation(
            params, make_half_and_half_sites(NUM_SITES))
        hh_curve.append(hh.page_throughput.mean)
        hh_mpl.append(hh.avg_mpl)
    return FigureResult(
        figure_id="ext_distributed",
        title=(f"Distributed cluster ({NUM_SITES} sites, "
               f"locality {LOCALITY:.0%})"),
        x_label="terminals",
        y_label="pages/second (cluster total)",
        x_values=[float(t) for t in points],
        series={"per-site Half-and-Half": hh_curve,
                "no control": raw_curve},
        extras={"hh_avg_mpl": hh_mpl},
    )


FIGURE = FigureSpec(
    figure_id="ext_distributed",
    title="Distributed load control (Section 5 extension)",
    paper_claim=("per-site Half-and-Half holds a multi-site cluster at "
                 "peak throughput while the uncontrolled cluster "
                 "thrashes — and home-site-only admission makes load-"
                 "control deadlocks impossible"),
    run=run,
    tags=("extension", "distributed"),
)
