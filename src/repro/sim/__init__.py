"""Discrete-event simulation substrate.

Provides the event-calendar kernel (:class:`Simulator`), reproducible named
random streams (:class:`RandomStreams`), and the physical resource models
(:class:`CpuPool`, :class:`DiskArray`) used by the DBMS model.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.resources import CpuPool, DiskArray, Priority

__all__ = [
    "Event",
    "Simulator",
    "RandomStreams",
    "CpuPool",
    "DiskArray",
    "Priority",
]
