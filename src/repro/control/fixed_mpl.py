"""Fixed multiprogramming-level control.

The classic static approach the paper argues against: admit transactions
whenever fewer than ``mpl`` are active, park the rest in the ready queue.
Optimal for exactly one workload; Figures 8–11 show how it loses when the
workload moves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.transaction import Transaction

from repro.control.base import LoadController
from repro.errors import ConfigurationError

__all__ = ["FixedMPLController"]


class FixedMPLController(LoadController):
    """Admit while the number of active transactions is below ``mpl``."""

    def __init__(self, mpl: int):
        super().__init__()
        if mpl < 1:
            raise ConfigurationError(f"mpl must be >= 1, got {mpl}")
        self.mpl = mpl

    @property
    def base_name(self) -> str:
        return f"FixedMPL({self.mpl})"

    def want_admit(self, txn: "Transaction") -> bool:
        admit = self.system.tracker.n_active < self.mpl
        if self.decision_log is not None:
            self.log_decision("admit" if admit else "defer", txn=txn,
                              measure=float(self.system.tracker.n_active),
                              threshold=float(self.mpl))
        return admit

    def on_removed(self, txn: "Transaction") -> None:
        # Top the system back up to the limit from the ready queue.
        while (self.system.tracker.n_active < self.mpl
               and self.system.try_admit_one()):
            if self.decision_log is not None:
                self.log_decision(
                    "admit_queued",
                    measure=float(self.system.tracker.n_active),
                    threshold=float(self.mpl),
                    detail="top-up after removal")
