"""The lock-mode compatibility matrix."""

from repro.lockmgr.modes import LockMode, compatible


def test_shared_compatible_with_shared():
    assert compatible(LockMode.S, LockMode.S)


def test_exclusive_conflicts_with_shared():
    assert not compatible(LockMode.X, LockMode.S)
    assert not compatible(LockMode.S, LockMode.X)


def test_exclusive_conflicts_with_exclusive():
    assert not compatible(LockMode.X, LockMode.X)


def test_modes_are_distinct():
    assert LockMode.S != LockMode.X
