"""Per-site time-series probes for the distributed system.

The distributed analogue of :class:`repro.telemetry.probes.
ProbeScheduler`: one calendar slot per interval produces *both* an
aggregate :class:`~repro.telemetry.probes.ProbeSample` (cluster-wide
populations, summed queues, mean utilizations — so every downstream
consumer of ``probes.jsonl`` works unchanged) and one
:class:`SiteProbeSample` per site (home population, per-site
utilization, liveness/degraded flags, in-doubt count — the rows behind
``site_probes.jsonl`` and the failure figure's per-site series).

Probes remain strictly read-only: no random-stream consumption, no
state mutation, and exactly one pending probe event at any time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.telemetry.probes import ProbeSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.distributed.system import DistributedSystem

__all__ = ["SiteProbeSample", "DistributedProbeScheduler"]


@dataclass(frozen=True)
class SiteProbeSample:
    """One instant of one site's state (the site_probes.jsonl row).

    Utilizations are averaged over the interval since the previous
    sample; ``cum_commits`` counts transactions *homed* at this site.
    ``up``/``degraded``/``in_doubt`` are the failure-layer fields —
    trivially ``True``/``False``/``0`` when the failure model is off.
    """

    time: float
    site: int
    up: bool
    degraded: bool
    n_active: int
    ready_queue: int
    blocked_frac: float
    cpu_util: float
    disk_util: float
    in_doubt: int
    cum_commits: int
    cum_lock_requests: int
    cum_lock_blocks: int

    def to_dict(self) -> Dict[str, Any]:
        """A flat JSON-serializable record."""
        return {
            "time": self.time,
            "site": self.site,
            "up": self.up,
            "degraded": self.degraded,
            "n_active": self.n_active,
            "ready_queue": self.ready_queue,
            "blocked_frac": self.blocked_frac,
            "cpu_util": self.cpu_util,
            "disk_util": self.disk_util,
            "in_doubt": self.in_doubt,
            "cum_commits": self.cum_commits,
            "cum_lock_requests": self.cum_lock_requests,
            "cum_lock_blocks": self.cum_lock_blocks,
        }


class DistributedProbeScheduler:
    """Samples a :class:`~repro.distributed.system.DistributedSystem`.

    Each firing appends one aggregate sample to :attr:`samples` and one
    :class:`SiteProbeSample` per site (ascending site id) to
    :attr:`site_samples`, then hands the aggregate sample to every
    registered listener — the same contract as the single-site
    scheduler, so shared consumers need not know which one produced
    their stream.
    """

    def __init__(self, system: "DistributedSystem", interval: float = 1.0):
        if interval <= 0.0:
            raise ConfigurationError(
                f"probe interval must be positive, got {interval}")
        self.system = system
        self.interval = interval
        self.samples: List[ProbeSample] = []
        self.site_samples: List[SiteProbeSample] = []
        self.listeners: List[Any] = []
        self._started = False
        # Per-site busy-time high-water marks for interval utilization.
        self._last_time = system.sim.now
        self._cpu_busy = [s.cpu.busy_time for s in system.sites]
        self._disk_busy = [s.disks.busy_time for s in system.sites]

    def start(self) -> None:
        """Schedule the first probe, ``interval`` seconds from now."""
        if self._started:
            return
        self._started = True
        self.system.sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        aggregate = self.sample()
        self.samples.append(aggregate)
        for listener in self.listeners:
            listener.on_sample(aggregate)
        self.system.sim.schedule(self.interval, self._fire)

    # ------------------------------------------------------------------

    def sample(self) -> ProbeSample:
        """Snapshot the cluster and every site right now (read-only).

        Appends the per-site rows as a side effect and returns the
        aggregate sample (which :meth:`_fire` appends itself).
        """
        system = self.system
        now = system.sim.now
        tracker = system.tracker
        collector = system.collector

        dt = now - self._last_time
        self._last_time = now

        cpu_utils: List[float] = []
        disk_utils: List[float] = []
        for i, site in enumerate(system.sites):
            cpu_busy = site.cpu.busy_time
            disk_busy = site.disks.busy_time
            if dt > 0.0:
                cpu_utils.append(min(1.0, (cpu_busy - self._cpu_busy[i])
                                     / (dt * site.cpu.num_cpus)))
                disk_utils.append(min(1.0, (disk_busy - self._disk_busy[i])
                                      / (dt * site.disks.num_disks)))
            else:
                cpu_utils.append(0.0)
                disk_utils.append(0.0)
            self._cpu_busy[i] = cpu_busy
            self._disk_busy[i] = disk_busy

        for i, (site, view) in enumerate(zip(system.sites,
                                             system.site_views)):
            home = view.tracker
            self.site_samples.append(SiteProbeSample(
                time=now,
                site=i,
                up=system._site_up[i],
                degraded=system._degraded[i],
                n_active=home.n_active,
                ready_queue=len(view.ready_queue),
                blocked_frac=(home.n_blocked / home.n_active
                              if home.n_active else 0.0),
                cpu_util=cpu_utils[i],
                disk_util=disk_utils[i],
                in_doubt=len(system._indoubt[i]),
                cum_commits=system.site_commits[i],
                cum_lock_requests=site.lock_table.requests,
                cum_lock_blocks=site.lock_table.blocks,
            ))

        # Conflict ratio over the global lock view (all sites).
        total_held = 0
        running_held = 0
        for txn in tracker.active_transactions():
            held = system.global_locks.num_held(txn)
            total_held += held
            if not txn.is_blocked:
                running_held += held
        conflict_ratio: Optional[float]
        if total_held == 0:
            conflict_ratio = 1.0
        elif running_held == 0:
            conflict_ratio = None
        else:
            conflict_ratio = total_held / running_held

        n_active = tracker.n_active
        n1, n2 = tracker.n_state1, tracker.n_state2
        n3, n4 = tracker.n_state3, tracker.n_state4
        n_sites = len(system.sites)
        return ProbeSample(
            time=now,
            n_active=n_active,
            ready_queue=sum(len(v.ready_queue)
                            for v in system.site_views),
            n_state1=n1, n_state2=n2, n_state3=n3, n_state4=n4,
            frac_state1=(n1 / n_active if n_active else 0.0),
            frac_state3=(n3 / n_active if n_active else 0.0),
            blocked_frac=((n3 + n4) / n_active if n_active else 0.0),
            cpu_util=sum(cpu_utils) / n_sites,
            disk_util=sum(disk_utils) / n_sites,
            # Any site's injected degradation shows in the aggregate.
            cpu_scale=max(s.cpu.service_scale for s in system.sites),
            disk_scale=max(s.disks.service_scale for s in system.sites),
            conflict_ratio=conflict_ratio,
            locks_held=total_held,
            locked_pages=sum(s.lock_table.num_locked_pages()
                             for s in system.sites),
            cum_lock_requests=sum(s.lock_table.requests
                                  for s in system.sites),
            cum_lock_blocks=sum(s.lock_table.blocks
                                for s in system.sites),
            cum_commits=collector.commits,
            cum_aborts=collector.aborts,
            cum_aborts_by_reason=dict(collector.aborts_by_reason),
            cum_pages=int(collector.raw_pages),
        )
