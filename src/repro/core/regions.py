"""Operating-region classification: the 50% rule (paper Section 2).

The DBMS state space is divided into three mutually exclusive regions:

* **Underloaded** — ``#State1 / #active > 0.5 + δ``: more than about half
  the active transactions are mature and running, so conditions are
  favourable for admitting more.
* **Overloaded**  — ``#State3 / #active > 0.5 + δ``: more than about half
  are mature but blocked, so transactions should be aborted to reduce
  data contention.
* **Comfortable** — neither; no load-control action is warranted.

δ is a small tolerance providing hysteresis; the paper found δ = 0.025
(a 5% overall window across the two conditions) to work well.

An empty system is classified Underloaded: with nothing active, admitting
is always the right move.
"""

from __future__ import annotations

import enum

__all__ = ["Region", "DEFAULT_DELTA", "classify_region"]

DEFAULT_DELTA = 0.025


class Region(enum.Enum):
    """The three mutually exclusive operating regions."""

    UNDERLOADED = "underloaded"
    COMFORTABLE = "comfortable"
    OVERLOADED = "overloaded"


def classify_region(n_active: int, n_state1: int, n_state3: int,
                    delta: float = DEFAULT_DELTA) -> Region:
    """Apply the 50% rule to the current populations."""
    if n_active <= 0:
        return Region.UNDERLOADED
    threshold = 0.5 + delta
    if n_state1 / n_active > threshold:
        return Region.UNDERLOADED
    if n_state3 / n_active > threshold:
        return Region.OVERLOADED
    return Region.COMFORTABLE
