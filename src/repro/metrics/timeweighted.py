"""Time-weighted statistics for piecewise-constant signals.

Population counts in a queuing simulation (active transactions, blocked
transactions, queue lengths) are step functions of simulated time; their
meaningful average is the time integral divided by elapsed time, not the
mean of observations.  :class:`TimeWeightedValue` accumulates that
integral incrementally: call :meth:`update` whenever the value changes.
"""

from __future__ import annotations

__all__ = ["TimeWeightedValue"]


class TimeWeightedValue:
    """Tracks ∫value·dt for a piecewise-constant signal."""

    __slots__ = ("_value", "_last_time", "_integral", "_start_time",
                 "max_value")

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = initial
        self._last_time = start_time
        self._start_time = start_time
        self._integral = 0.0
        self.max_value = initial

    @property
    def current(self) -> float:
        """The value as of the last update."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        self._integral += self._value * (now - self._last_time)
        self._value = value
        self._last_time = now
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float, now: float) -> None:
        """Shift the signal by ``delta`` at time ``now``."""
        self.update(self._value + delta, now)

    def integral(self, now: float) -> float:
        """∫value·dt from the (possibly reset) start time to ``now``."""
        return self._integral + self._value * (now - self._last_time)

    def average(self, now: float) -> float:
        """Time-weighted mean over the observation window ending at ``now``."""
        elapsed = now - self._start_time
        if elapsed <= 0.0:
            return self._value
        return self.integral(now) / elapsed

    def reset(self, now: float) -> None:
        """Restart the observation window at ``now`` (value is kept)."""
        self._integral = 0.0
        self._last_time = now
        self._start_time = now
        self.max_value = self._value
