#!/usr/bin/env python3
"""Per-site load control on a distributed DBMS cluster.

The paper's Section 5 leaves distributed load control as future work,
warning that "load control deadlocks must be carefully prevented".
This example runs the multi-site extension: a four-site cluster with a
range-partitioned database, transactions homed round-robin across
sites, and remote page accesses over a 1 ms network.  Each site runs
its own Half-and-Half controller over the transactions homed there —
and because admission happens only at the home site, admission waits
can never form cycles.

Run:  python examples/distributed_cluster.py
"""

from repro.distributed import (
    DistributedParameters,
    make_half_and_half_sites,
    make_no_control_sites,
    run_distributed_simulation,
)


def main() -> None:
    sites = 4
    print(f"Cluster: {sites} sites x (1 CPU + 5 disks), 1000-page DB")
    print("range-partitioned, 200 terminals, 1 ms messages.\n")

    print(f"{'locality':>9} {'control':<16} {'thruput':>8} "
          f"{'avg MPL':>8} {'aborts':>7} {'resp(s)':>8}")
    print("-" * 62)
    for locality in (0.9, 0.5):
        params = DistributedParameters(
            num_sites=sites, num_terms=200, locality=locality,
            warmup_time=20.0, num_batches=4, batch_time=25.0)
        raw = run_distributed_simulation(params,
                                         make_no_control_sites(sites))
        hh = run_distributed_simulation(params,
                                        make_half_and_half_sites(sites))
        for label, r in (("no control", raw), ("per-site H&H", hh)):
            print(f"{locality:>9.0%} {label:<16} "
                  f"{r.page_throughput.mean:>8.1f} {r.avg_mpl:>8.1f} "
                  f"{r.aborts:>7} {r.avg_response_time:>8.2f}")
        gain = hh.page_throughput.mean / raw.page_throughput.mean
        print(f"{'':>9} -> per-site Half-and-Half delivers "
              f"{gain:.1f}x the throughput\n")

    print("Lock thrashing is not a single-site artifact: with the")
    print("database spread over four sites the uncontrolled cluster")
    print("still collapses, and four independent Half-and-Half")
    print("controllers — each seeing only its own site's transactions —")
    print("recover the cluster's peak without any global coordination.")


if __name__ == "__main__":
    main()
