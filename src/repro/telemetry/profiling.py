"""Wall-clock profiling of the simulation event loop.

An :class:`EngineProfiler` attached to a
:class:`~repro.sim.engine.Simulator` (``sim.profiler = EngineProfiler()``)
receives every executed event's callback and its ``time.perf_counter``
duration.  Events are bucketed two ways:

* by the callback's defining module — the *subsystem* — so a profile
  answers "where does the wall time go: the DBMS state machine, the
  lock manager, the resources, the controller?";
* by the callback's *canonical qualname* — the logical event type —
  so it also answers "which transition is hot: ``_page_read_done``,
  ``_next_operation``, a disk completion?".

Canonicalization matters because of the kernel fast path: when no
observability hook is attached, :meth:`DBMSSystem._bind_fast_dispatch`
shadows the state-machine methods with hook-free ``*_fast`` twins, so
the same logical transition reaches the profiler under two different
bound methods depending on dispatch path.  :func:`canonical_qualname`
collapses the twins (``DBMSSystem._page_read_done_fast`` and
``DBMSSystem._page_read_done`` both key as
``DBMSSystem._page_read_done``), which keeps profiles comparable across
configurations and aggregates both paths under one key.

The profiler measures *wall* time and is therefore intentionally kept
out of the deterministic telemetry files; its summary lands in the
non-deterministic ``profile.json``.  The richer attribution profiler
(per-phase logical stacks, flamegraph export, allocation probes) lives
in :mod:`repro.telemetry.perf` and builds on this module.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Tuple

__all__ = ["EngineProfiler", "subsystem_of", "canonical_qualname"]

_PACKAGE_PREFIX = "repro."

# The fast-dispatch suffixes, longest first so ``_fast_cc`` is not
# half-stripped to a stale ``_cc`` key.
_FAST_SUFFIXES = ("_fast_cc", "_fast")

# Fast twins whose stripped name still differs from the hooked
# original's public name.
_QUALNAME_ALIASES = {
    "DBMSSystem._abort_transaction": "DBMSSystem.abort_transaction",
}


def subsystem_of(callback: Callable[..., Any]) -> str:
    """The subsystem bucket for one event callback.

    The callback's defining module, minus the package prefix — e.g.
    ``DBMSSystem._page_read_done`` buckets under ``dbms.system`` and a
    disk completion under ``sim.resources.disk``.
    """
    module = getattr(callback, "__module__", None) or "<unknown>"
    if module.startswith(_PACKAGE_PREFIX):
        module = module[len(_PACKAGE_PREFIX):]
    return module


def canonical_qualname(callback: Callable[..., Any]) -> str:
    """The logical event-type key for one event callback.

    The callback's ``__qualname__`` with any fast-dispatch suffix
    stripped, so the hook-free ``*_fast`` twins and their hooked
    originals collapse into one key regardless of which dispatch path
    executed the event.  Callables without a qualname (rare: partials,
    C callables) key as their ``__name__`` or type name.
    """
    qual = getattr(callback, "__qualname__", None)
    if qual is None:
        qual = getattr(callback, "__name__", None)
        if qual is None:
            qual = type(callback).__name__
        return qual
    for suffix in _FAST_SUFFIXES:
        if qual.endswith(suffix):
            qual = qual[:-len(suffix)]
            break
    return _QUALNAME_ALIASES.get(qual, qual)


class EngineProfiler:
    """Per-subsystem and per-event-type counts and wall-clock timings.

    The simulator calls :meth:`record` once per executed event; the
    profiler also keeps its own ``perf_counter`` epoch so
    :meth:`summary` can report events per wall-second including loop
    overhead, not just callback time.
    """

    def __init__(self) -> None:
        self.events = 0
        self.callback_seconds = 0.0
        # subsystem -> [event count, callback seconds]
        self.by_subsystem: Dict[str, list] = {}
        # canonical "subsystem.Class.method" -> [count, seconds]
        self.by_event_type: Dict[str, list] = {}
        # (module, raw qualname) -> (subsystem, canonical event key);
        # bound methods are fresh objects per attribute access, so the
        # memo keys on the underlying names, not the callback object.
        self._names: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._epoch = time.perf_counter()

    def _names_of(self, callback: Callable[..., Any]) -> Tuple[str, str]:
        """Memoized ``(subsystem, canonical event key)`` of a callback."""
        raw = (getattr(callback, "__module__", None) or "<unknown>",
               getattr(callback, "__qualname__", None) or "<callable>")
        names = self._names.get(raw)
        if names is None:
            subsystem = subsystem_of(callback)
            names = (subsystem,
                     f"{subsystem}.{canonical_qualname(callback)}")
            self._names[raw] = names
        return names

    def record(self, callback: Callable[..., Any], elapsed: float,
               args: tuple = ()) -> None:
        """Credit one executed event to its subsystem and event type.

        ``args`` is the event's argument tuple; this profiler ignores
        it, but subclasses (the attribution profiler) use it for
        page-class attribution, and the simulator always passes it.
        """
        self.events += 1
        self.callback_seconds += elapsed
        subsystem, event_key = self._names_of(callback)
        bucket = self.by_subsystem.get(subsystem)
        if bucket is None:
            bucket = self.by_subsystem[subsystem] = [0, 0.0]
        bucket[0] += 1
        bucket[1] += elapsed
        bucket = self.by_event_type.get(event_key)
        if bucket is None:
            bucket = self.by_event_type[event_key] = [0, 0.0]
        bucket[0] += 1
        bucket[1] += elapsed

    @property
    def wall_seconds(self) -> float:
        """Wall time since the profiler was created."""
        return time.perf_counter() - self._epoch

    @property
    def events_per_second(self) -> float:
        wall = self.wall_seconds
        return self.events / wall if wall > 0.0 else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable profile (the profile.json payload)."""
        subsystems = {
            name: {"events": count, "seconds": seconds}
            for name, (count, seconds) in sorted(self.by_subsystem.items())
        }
        event_types = {
            name: {"events": count, "seconds": seconds}
            for name, (count, seconds) in sorted(self.by_event_type.items())
        }
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "callback_seconds": self.callback_seconds,
            "events_per_second": self.events_per_second,
            "subsystems": subsystems,
            "event_types": event_types,
        }

    def format(self) -> str:
        """Human-readable profile table."""
        lines = [f"{self.events} events in {self.wall_seconds:.2f}s wall "
                 f"({self.events_per_second:,.0f} events/s)"]
        total = self.callback_seconds or 1.0
        ranked = sorted(self.by_subsystem.items(),
                        key=lambda kv: kv[1][1], reverse=True)
        for name, (count, seconds) in ranked:
            lines.append(f"  {name:<24} {count:>10} events "
                         f"{seconds:8.3f}s ({100.0 * seconds / total:5.1f}%)")
        return "\n".join(lines)
