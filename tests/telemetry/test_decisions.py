"""Decision log: data model, capacity, and controller integration."""

from __future__ import annotations

from repro.control.blocked_fraction import BlockedFractionController
from repro.control.conflict_ratio import ConflictRatioController
from repro.control.fixed_mpl import FixedMPLController
from repro.control.tay import TayRuleController
from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.runner import run_simulation
from repro.telemetry.decisions import (ControllerDecision, DecisionAction,
                                       DecisionLog)


def _decision(time=1.0, action=DecisionAction.ADMIT, **kwargs):
    return ControllerDecision(time=time, controller="test",
                              action=action, **kwargs)


def test_fractions_guard_against_empty_system():
    d = _decision(n_active=0, n_state1=0, n_state3=0)
    assert d.frac_state1 == 0.0
    assert d.frac_state3 == 0.0
    d = _decision(n_active=4, n_state1=2, n_state3=1)
    assert d.frac_state1 == 0.5
    assert d.frac_state3 == 0.25


def test_to_dict_is_the_jsonl_row():
    row = _decision(n_active=4, n_state1=2, n_state3=1,
                    txn_id=9, measure=0.5, threshold=0.525,
                    region="comfortable").to_dict()
    assert row["action"] == "admit"
    assert row["region"] == "comfortable"
    assert row["frac_state1"] == 0.5
    assert row["txn_id"] == 9


def test_capacity_drops_oldest():
    log = DecisionLog(capacity=3)
    for i in range(5):
        log.record(_decision(time=float(i), txn_id=i))
    assert len(log) == 3
    assert log.dropped == 2
    assert [d.txn_id for d in log] == [2, 3, 4]


def test_queries():
    log = DecisionLog()
    log.record(_decision(action=DecisionAction.ADMIT, txn_id=1))
    log.record(_decision(action=DecisionAction.DEFER, txn_id=2))
    log.record(_decision(action=DecisionAction.ABORT_VICTIM, txn_id=3))
    assert log.counts() == {"admit": 1, "defer": 1, "abort_victim": 1}
    assert [d.txn_id for d in log.decisions("defer")] == [2]
    assert log.victims() == [3]
    assert "abort_victim" in log.format(limit=1)


def _run_with_log(params, controller):
    log = DecisionLog()
    controller.decision_log = log
    run_simulation(params, controller)
    return log


def test_half_and_half_logs_admissions(fast_params):
    log = _run_with_log(fast_params, HalfAndHalfController())
    counts = log.counts()
    assert counts.get(DecisionAction.ADMIT, 0) > 0
    # Every decision carries evidence: the measured fraction and the
    # threshold it was compared against.
    for d in log.decisions(DecisionAction.ADMIT):
        assert d.measure is not None and d.threshold is not None
        assert d.region is not None


def test_fixed_mpl_logs_defers_under_saturation(fast_params):
    log = _run_with_log(fast_params, FixedMPLController(2))
    counts = log.counts()
    assert counts.get(DecisionAction.DEFER, 0) > 0
    assert counts.get(DecisionAction.ADMIT_QUEUED, 0) > 0
    for d in log.decisions(DecisionAction.DEFER):
        assert d.measure >= d.threshold == 2.0


def test_blocked_fraction_logs_with_blocked_measure(fast_params):
    log = _run_with_log(fast_params, BlockedFractionController())
    admits = log.decisions(DecisionAction.ADMIT)
    assert admits
    assert all(0.0 <= d.measure <= 1.0 for d in admits)


def test_conflict_ratio_serializes_measure_as_finite_or_none(fast_params):
    log = _run_with_log(fast_params, ConflictRatioController())
    assert len(log) > 0
    for d in log:
        assert d.measure is None or d.measure == d.measure  # no NaN/inf
        row = d.to_dict()
        import json
        json.dumps(row)  # must be JSON-serializable (inf would fail repr)


def test_tay_logs_derived_mpl_on_attach(fast_params):
    controller = TayRuleController.from_params(fast_params)
    log = DecisionLog()
    controller.decision_log = log
    controller.on_decision_log_attached()
    (d,) = log.decisions("set_mpl")
    assert d.measure == float(controller.mpl)
    assert "D_eff" in d.detail


def test_no_log_means_no_recording(fast_params):
    """Controllers run identically with and without a decision log."""
    with_log = HalfAndHalfController()
    with_log.decision_log = DecisionLog()
    r1 = run_simulation(fast_params, with_log)
    r2 = run_simulation(fast_params, HalfAndHalfController())
    assert r1 == r2
