"""Malthusian load control: passivate instead of abort.

The Half-and-Half rule sheds overload by *aborting* blocked
transactions, discarding every page they processed.  The Malthusian
Locks policy (Dice & Kogan — see PAPERS.md) sheds the same load
waste-free: excess contenders are *passivated* into a cold set and
readmitted LIFO, so the most recently parked (cache-warm, in the
original; here simply the youngest parked) contender returns first,
while long-waiters are culled into the cold set preferentially.

Passivation and abortion are not symmetric levers.  Aborting a blocked
transaction *releases its locks*, so Half-and-Half can dissolve a
waits-for clot after letting it form; parking is restricted to blocked
transactions that hold no locks (anything stronger would strand locks
inside the cold set), so a passivating policy can only *prevent* a
clot, never unwind one.  Gating admission on the blocked fraction
alone does not prevent it either: the measure lags admission by the
several page-service times it takes a fresh transaction to reach its
first conflict, and once a clot forms the measure latches high while
the population drains, producing a flood/starve limit cycle.  The
controller therefore drives a *population cap* with AIMD (the TCP
congestion-control shape) and uses the blocked fraction only as its
congestion signal:

* **Congestion signal** — the total blocked fraction
  ``(n₃ + n₄) / n_active`` against the threshold (default the
  Half-and-Half boundary ``0.5 + δ``).  It deliberately counts mature
  blocked transactions: past the knee most blocked transactions *are*
  mature, so Half-and-Half's immature-only fraction saturates below ½.
  Empirically the base case runs its throughput plateau (MPL ≈ 35–50)
  at a total blocked fraction of 0.4–0.55, so the 50% boundary marks
  the plateau's edge.
* **Lock request blocked** — if the signal fires while the population
  is within the cap, the cap halves (multiplicative decrease: the
  budget itself was too generous).  Then, while the signal stays
  above threshold, passivate the longest-waiting blocked transaction
  holding no locks: such a transaction is waiting on its very first
  unsatisfied request — no work done, no resource held, nobody blocked
  behind it — so parking it is free.
* **Commit** — while comfortable (signal below threshold) and pressing
  the cap, the cap grows by one (additive increase probes for spare
  capacity).  The committed transaction is replaced from the cold set
  (LIFO) or the external ready queue only if the population sits below
  the cap *and* the signal is quiet; otherwise it leaves unreplaced
  and the population decays toward the cap.
* **Lock request granted** — while below the cap and the signal is
  quiet, re-enter one transaction per grant: parked (LIFO, the
  youngest — cache-warm in the original) first, then the queue head.
* **Arrival** — admit when below the cap and the ready queue is empty;
  defer otherwise.  Deferring behind a non-empty queue keeps
  admission FIFO-fair and paced: queued work re-enters one per
  commit or grant, never as a flood the moment the cap lifts.

With ``threshold=math.inf`` the signal never fires: the cap never
decreases below its initial ``num_terms + 1``, nothing is ever
passivated or deferred, and every hook degenerates to no-control
behaviour — the controller is bit-identical to
:class:`~repro.control.no_control.NoControlController`.

A passivated transaction keeps its execution state and resumes exactly
where it stopped; the only cost of a park/readmit cycle is the wait
itself.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.transaction import Transaction

from repro.control.base import LoadController
from repro.core.regions import DEFAULT_DELTA, Region
from repro.errors import ConfigurationError

__all__ = ["MalthusianController"]


_MIN_CAP = 2  # floor of the AIMD cap: progress (and deadlock
#               detection) need at least two concurrent transactions


class MalthusianController(LoadController):
    """Passivating load control: an AIMD population cap plus a cold set.

    Args:
        delta: hysteresis tolerance of the 50% rule (paper: 0.025).
        threshold: the congestion signal — the total blocked fraction
            (states 3 + 4 over the active population) above which the
            cap halves and blocked transactions are culled into the
            cold set.  ``None`` (default) uses the Half-and-Half
            boundary ``0.5 + delta``; ``math.inf`` disables load
            control entirely, making the controller bit-identical to
            :class:`~repro.control.no_control.NoControlController`.
    """

    def __init__(self, delta: float = DEFAULT_DELTA,
                 threshold: Optional[float] = None):
        super().__init__()
        if delta < 0.0 or delta >= 0.5:
            raise ConfigurationError(
                f"delta must be in [0, 0.5), got {delta}")
        if threshold is not None and not threshold > 0.0:
            raise ConfigurationError(
                f"threshold must be positive, got {threshold}")
        self.delta = delta
        self.threshold = (threshold if threshold is not None
                          else 0.5 + delta)
        # The AIMD population cap, set at attach(): load control
        # starts from a small cap and probes upward (a flood of
        # num_terms admissions would clot before the signal could
        # react, and passivation cannot unwind a clot), while
        # threshold=inf starts unrestrictive (num_terms + 1, a level
        # no closed-system population can reach).
        self.cap = 0
        # Dead zone: probe for capacity only while the signal sits
        # well below the threshold.  The blocked fraction lags
        # admission by the few seconds a fresh transaction needs to
        # reach its first conflict, so probing right up to the
        # threshold overshoots deep into the thrashing region before
        # the signal can object.
        self._grow_below = 0.7 * self.threshold
        # The cap moves on a smoothed signal (EWMA over commits), not
        # the instantaneous fraction: at a well-chosen cap the raw
        # fraction still spikes past the threshold whenever a hot page
        # queues a burst of waiters, and halving on every spike drags
        # the time-average cap well below the optimum.  Culling, by
        # contrast, acts on the instantaneous value — parking a
        # zero-lock waiter is free, so reacting to a spike costs
        # nothing.
        self._fb_smooth = 0.0
        # One multiplicative decrease per congestion episode: the
        # smoothed signal stays latched for the seconds a drain takes,
        # and shrinking again the moment the population reaches the
        # new cap turns one overshoot into a cascade of halvings and a
        # deep trough.  The episode ends when the smoothed signal
        # falls back below the threshold.
        self._in_episode = False
        # Block times of currently blocked transactions: the culling
        # order is longest-waiting first (Malthusian Locks culls from
        # the tail of the wait queue).
        self._blocked_since: Dict[int, float] = {}
        # Statistics.
        self.passivations = 0
        self.readmissions = 0
        self.cap_decreases = 0

    def attach(self, system) -> None:
        super().attach(system)
        unrestricted = system.params.num_terms + 1
        if math.isinf(self.threshold):
            self.cap = unrestricted
        else:
            self.cap = min(unrestricted, 4 * _MIN_CAP)

    @property
    def base_name(self) -> str:
        if math.isinf(self.threshold):
            return "Malthusian(off)"
        return f"Malthusian(δ={self.delta})"

    # ------------------------------------------------------------------

    def region(self) -> Region:
        """The current operating region (Half-and-Half's 50% rule)."""
        tracker = self.system.tracker
        n_active = tracker.n_active
        if n_active <= 0:
            return Region.UNDERLOADED
        boundary = 0.5 + self.delta
        if tracker.n_state1 / n_active > boundary:
            return Region.UNDERLOADED
        if tracker.n_state3 / n_active > boundary:
            return Region.OVERLOADED
        return Region.COMFORTABLE

    def _frac_blocked(self) -> float:
        """States 3 + 4 over the active population (the cull measure)."""
        tracker = self.system.tracker
        if not tracker.n_active:
            return 0.0
        return ((tracker.n_state3 + tracker.n_state4)
                / tracker.n_active)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def want_admit(self, txn: "Transaction") -> bool:
        # Admit below the cap, but defer behind a non-empty ready
        # queue: re-entry stays FIFO-fair and paced (one per commit or
        # grant), never a flood the moment the cap lifts.  (With
        # threshold=inf the cap never drops below num_terms + 1 and
        # the queue provably stays empty, so this is unconditionally
        # True — the metamorphic identity with no control.)
        admit = (self.system.tracker.n_active <= 0
                 or (self.system.tracker.n_active < self.cap
                     and not self.system.ready_queue))
        if self.decision_log is not None:
            self.log_decision("admit" if admit else "defer", txn=txn,
                              region=self.region(),
                              measure=self._frac_blocked(),
                              threshold=self.threshold,
                              detail=f"cap {self.cap}")
        return admit

    def on_block(self, txn: "Transaction") -> None:
        self._blocked_since[txn.txn_id] = self.system.sim.now
        tracker = self.system.tracker
        # Congestion within budget: the budget itself was too generous
        # (multiplicative decrease, at most once per episode).
        if (not self._in_episode
                and tracker.n_active <= self.cap
                and self._fb_smooth > self.threshold):
            old_cap = self.cap
            self.cap = max(_MIN_CAP, tracker.n_active // 2)
            self._in_episode = True
            if self.cap < old_cap:
                self.cap_decreases += 1
                if self.decision_log is not None:
                    self.log_decision("shrink_cap",
                                      region=Region.OVERLOADED,
                                      measure=self._frac_blocked(),
                                      threshold=self.threshold,
                                      detail=f"cap {old_cap} -> "
                                             f"{self.cap}")
        # Cull long-waiters into the cold set until no free victim
        # remains, in two situations: while the population is still
        # above the cap (parking free victims drains a descent much
        # faster than waiting for commits at thrashing-depressed
        # rates), and while a sustained congestion episode is in
        # progress with the instantaneous fraction confirming it.
        # Requiring the *smoothed* signal in the second case keeps
        # steady-state spikes from churning waiters through
        # park/readmit cycles that would cost them their position in
        # the lock's wait queue.
        while (tracker.n_active > self.cap
               or (self._fb_smooth > self.threshold
                   and self._frac_blocked() > self.threshold)):
            victim = self._choose_victim()
            if victim is None:
                break
            self.passivations += 1
            self._blocked_since.pop(victim.txn_id, None)
            if self.decision_log is not None:
                self.log_decision("passivate", txn=victim,
                                  region=Region.OVERLOADED,
                                  measure=self._frac_blocked(),
                                  threshold=self.threshold,
                                  detail=f"cold set "
                                         f"{len(self.system.parked) + 1}")
            self.system.passivate_transaction(victim)

    def on_unblock(self, txn: "Transaction") -> None:
        self._blocked_since.pop(txn.txn_id, None)

    def on_lock_granted(self, txn: "Transaction") -> None:
        # Refill toward the cap: parked transactions (LIFO) first,
        # then the ready queue.  The cap alone governs the population —
        # gating refills on the (spiky) signal as well would hold the
        # average population below the cap exactly in the operating
        # band where the signal hovers near the threshold.
        tracker = self.system.tracker
        while tracker.n_active < self.cap:
            if not self._reenter_one("re-entry on lock grant"):
                break

    def on_commit(self, txn: "Transaction") -> None:
        tracker = self.system.tracker
        # Commits tick the smoothed signal: they arrive at roughly the
        # throughput rate, giving the EWMA a workload-independent time
        # constant of a few transaction lifetimes.
        self._fb_smooth += 0.2 * (self._frac_blocked() - self._fb_smooth)
        if self._in_episode and not self._fb_smooth > self.threshold:
            self._in_episode = False
        # Additive increase: a commit that presses the cap while the
        # smoothed signal sits inside the dead zone probes for spare
        # capacity, one step per commit.
        if (tracker.n_active >= self.cap - 1
                and not self._fb_smooth > self._grow_below):
            self.cap += 1
        # Replacement from the cold set or the queue, capped: over the
        # cap the committed transaction leaves unreplaced and the
        # population decays — attrition is the only shrink lever a
        # passivating policy has, because parking never touches
        # lock-holders.
        if tracker.n_active < self.cap:
            self._reenter_one("replacement for committed txn")

    def on_removed(self, txn: "Transaction") -> None:
        self._blocked_since.pop(txn.txn_id, None)

    def _reenter_one(self, why: str) -> bool:
        """Return one transaction to the active set: the youngest
        parked transaction if any (LIFO cold set), else the head of
        the external ready queue."""
        readmitted = self.system.reactivate_one()
        if readmitted is not None:
            self.readmissions += 1
            if self.decision_log is not None:
                self.log_decision("readmit", txn=readmitted,
                                  region=self.region(),
                                  measure=float(len(self.system.parked)),
                                  detail=why)
            return True
        return self.system.try_admit_one()

    # ------------------------------------------------------------------

    def _choose_victim(self) -> Optional["Transaction"]:
        """The longest-waiting blocked transaction holding no locks.

        Zero held locks means the victim is waiting on its very first
        unsatisfied request: it has processed no page, holds no
        resource, and has no pending continuation event, so parking it
        discards nothing and releases nothing.  Longest-waiting first
        is the Malthusian culling order; txn_id breaks ties
        deterministically.  Only *positive* waits are eligible — a
        transaction that blocked at this very instant may be one the
        refill loop just readmitted, and culling it again would
        park/readmit it forever within a single simulated moment.
        """
        lock_table = self.system.lock_table
        now = self.system.sim.now
        best: Optional["Transaction"] = None
        best_key = None
        for candidate in self.system.tracker.blocked_transactions():
            if lock_table.num_held(candidate) > 0:
                continue
            since = self._blocked_since.get(candidate.txn_id)
            if since is None or since >= now:
                continue
            key = (since, candidate.txn_id)
            if best is None or key < best_key:
                best, best_key = candidate, key
        return best
