"""Runtime invariant oracle: the cross-subsystem checks for live runs.

:class:`InvariantChecker` attaches to a :class:`~repro.dbms.system.
DBMSSystem` through the same zero-cost-off hook slots the telemetry
layer uses (``sim.monitor`` for per-event cadences, ``system.invariants``
for the on-commit cadence) and, at the configured cadence, asserts the
catalog below over the *quiescent* simulation state between events:

``lock_table_consistency``
    :meth:`LockTable.check_invariants` — queue/index/mode structure.
``lock_conflict_freedom``
    No page has more than one holder when any holder has X.  Computed
    from the canonical dump with explicit mode logic, deliberately *not*
    via :func:`repro.lockmgr.modes.compatible`, so a corrupted
    compatibility predicate cannot vouch for itself.
``waiter_has_blockers``
    Every blocked transaction's waits-for adjacency is non-empty — a
    waiter with no conflicting holder or queued predecessor should have
    been granted.
``tracker_bucket_conservation`` / ``blocked_flag_sync``
    :meth:`DBMSSystem.check_invariants` — Table 1 bucket counters match
    a from-scratch reclassification; blocked flags mirror lock waits.
``region_shadow``
    :func:`~repro.core.regions.classify_region` agrees with the exact-
    rational :func:`~repro.verify.reference.reference_classify_region`
    on the live populations (uses the controller's δ when it has one).
``ready_queue_accounting``
    Every queued transaction is in phase READY, is not in the active
    set, and holds/waits for nothing; the collector's ready-queue and
    MPL gauges equal the recomputed values.
``population_conservation``
    Closed system: active + ready-queued + parked (the Malthusian cold
    set) + in-flight terminal events (pending ``_terminal_submits`` /
    ``_arrival``) equals ``num_terms``.
``parked_accounting``
    Every cold-set transaction is in phase PARKED, outside the active
    set, holds/waits for nothing (enforced by
    :meth:`DBMSSystem.check_invariants`), and the collector's parked
    gauge equals the cold set's size.
``metrics_conservation``
    :meth:`Collector.conservation_errors` — the pure counter laws
    (aborts by reason sum up, committed pages ≤ raw pages, per-class
    tallies sum to globals, commits ≤ admissions, nothing negative).
``buffer_bounds``
    A bounded buffer pool never exceeds its capacity and its hit/miss/
    eviction counters are non-negative.

A failed check raises :class:`~repro.errors.InvariantViolation` enriched
with simulated time, the triggering context, and a JSON-serializable
evidence snapshot (also written to ``evidence_dir`` when configured).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.core.regions import classify_region
from repro.errors import InvariantViolation
from repro.verify.config import VerifyConfig
from repro.verify.reference import reference_classify_region

__all__ = ["InvariantChecker"]


class InvariantChecker:
    """Attachable invariant oracle for one simulation run.

    Usage::

        checker = InvariantChecker(VerifyConfig(cadence="sampled"))
        checker.attach(system)     # before system.start()
        ...                        # run as usual; violations raise

    Attributes:
        events_seen: simulation events observed (per-event cadences).
        checks_run: full catalog passes executed.
        violations: violations raised so far (0 on a clean run).
    """

    def __init__(self, config: Optional[VerifyConfig] = None):
        self.config = config if config is not None else VerifyConfig()
        self.system = None
        self.events_seen = 0
        self.checks_run = 0
        self.violations = 0

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------

    def attach(self, system) -> None:
        """Install this checker on a system (idempotent per system)."""
        self.system = system
        system.invariants = self
        if self.config.cadence in ("every", "sampled"):
            system.sim.monitor = self

    def on_event(self, callback) -> None:
        """``sim.monitor`` hook: called after every executed event."""
        self.events_seen += 1
        if (self.config.cadence == "every"
                or self.events_seen % self.config.sample_events == 0):
            name = getattr(callback, "__name__", repr(callback))
            self.check_all(context=f"after event {name}")

    def on_commit(self, txn) -> None:
        """``system.invariants`` hook: called at the end of each commit."""
        if self.config.cadence == "commit":
            self.check_all(context=f"commit of txn {txn.txn_id}")

    # ------------------------------------------------------------------
    # The catalog
    # ------------------------------------------------------------------

    def check_all(self, context: str = "") -> None:
        """Run the full catalog; raise on the first violated invariant."""
        self.checks_run += 1
        try:
            self._check_system_consistency()
            self._check_conflict_freedom()
            self._check_waiters_have_blockers()
            if self.config.shadow_regions:
                self._check_region_shadow()
            self._check_ready_queue_accounting()
            self._check_parked_accounting()
            self._check_population_conservation()
            self._check_metrics_conservation()
            self._check_buffer_bounds()
        except InvariantViolation as exc:
            self.violations += 1
            self._enrich_and_record(exc, context)
            raise

    def _violate(self, invariant: str, message: str, **evidence) -> None:
        raise InvariantViolation(message, invariant=invariant,
                                 sim_time=self.system.sim.now,
                                 evidence=evidence)

    def _check_system_consistency(self) -> None:
        # Lock-table structure, tracker bucket conservation, and
        # blocked-flag/lock-wait sync, as implemented by the subsystems
        # themselves (they raise typed InvariantViolation directly).
        self.system.check_invariants()

    def _check_conflict_freedom(self) -> None:
        for page, entry in self.system.lock_table.dump()["pages"].items():
            holders = entry["holders"]
            if "X" in holders.values() and len(holders) > 1:
                self._violate(
                    "lock_conflict_freedom",
                    f"page {page} has {len(holders)} holders but one "
                    f"holds X: {holders}",
                    page=page, holders=holders)

    def _check_waiters_have_blockers(self) -> None:
        table = self.system.lock_table
        for txn in self.system.tracker.active_transactions():
            if table.is_waiting(txn) and not table.blocking_set(txn):
                self._violate(
                    "waiter_has_blockers",
                    f"{txn!r} waits on page {table.waiting_on(txn)!r} "
                    f"with an empty blocking set (should have been "
                    f"granted)",
                    txn=txn.txn_id, page=str(table.waiting_on(txn)))

    def _check_region_shadow(self) -> None:
        tracker = self.system.tracker
        kwargs = {}
        delta = getattr(self.system.controller, "delta", None)
        if delta is not None:
            kwargs["delta"] = delta
        real = classify_region(tracker.n_active, tracker.n_state1,
                               tracker.n_state3, **kwargs)
        ref = reference_classify_region(tracker.n_active,
                                        tracker.n_state1,
                                        tracker.n_state3, **kwargs)
        if real is not ref:
            self._violate(
                "region_shadow",
                f"classify_region says {real.name} but the exact-"
                f"rational reference says {ref.name} for "
                f"n_active={tracker.n_active} "
                f"n_state1={tracker.n_state1} "
                f"n_state3={tracker.n_state3}",
                n_active=tracker.n_active, n_state1=tracker.n_state1,
                n_state3=tracker.n_state3, real=real.name, ref=ref.name)

    def _check_ready_queue_accounting(self) -> None:
        system = self.system
        tracker = system.tracker
        table = system.lock_table
        for txn in system.ready_queue:
            if txn.phase.value != "ready":
                self._violate(
                    "ready_queue_accounting",
                    f"{txn!r} is in the ready queue but in phase "
                    f"{txn.phase.value}", txn=txn.txn_id)
            if tracker.is_active(txn):
                self._violate(
                    "ready_queue_accounting",
                    f"{txn!r} is both ready-queued and active",
                    txn=txn.txn_id)
            if table.is_waiting(txn) or table.held_pages(txn):
                self._violate(
                    "ready_queue_accounting",
                    f"ready-queued {txn!r} holds or waits for locks",
                    txn=txn.txn_id)
        gauges = system.collector.counters_dict()
        if gauges["ready_queue"] != len(system.ready_queue):
            self._violate(
                "ready_queue_accounting",
                f"collector ready-queue gauge {gauges['ready_queue']} "
                f"but the queue holds {len(system.ready_queue)}",
                gauge=gauges["ready_queue"],
                actual=len(system.ready_queue))
        if gauges["active"] != tracker.n_active:
            self._violate(
                "ready_queue_accounting",
                f"collector MPL gauge {gauges['active']} but "
                f"{tracker.n_active} transactions are active",
                gauge=gauges["active"], actual=tracker.n_active)

    def _check_parked_accounting(self) -> None:
        system = self.system
        # Phase/membership/lock checks on the cold set live in
        # DBMSSystem.check_invariants (run by _check_system_consistency);
        # here we pin the collector's gauge against the actual set.
        gauges = system.collector.counters_dict()
        if gauges["parked"] != len(system.parked):
            self._violate(
                "parked_accounting",
                f"collector parked gauge {gauges['parked']} but the "
                f"cold set holds {len(system.parked)}",
                gauge=gauges["parked"], actual=len(system.parked))

    def _check_population_conservation(self) -> None:
        system = self.system
        if not system._started:
            return
        breakdown = self._population_breakdown()
        total = (breakdown["active"] + breakdown["ready_queue"]
                 + breakdown["parked"]
                 + breakdown["pending_submits"]
                 + breakdown["pending_arrivals"])
        if total != system.params.num_terms:
            self._violate(
                "population_conservation",
                f"closed system leaks transactions: "
                f"{breakdown} totals {total}, expected "
                f"{system.params.num_terms} terminals",
                **breakdown)

    def _population_breakdown(self) -> Dict[str, int]:
        system = self.system
        pending_submits = 0
        pending_arrivals = 0
        for callback in system.sim.iter_pending_callbacks():
            name = getattr(callback, "__name__", "")
            if name == "_terminal_submits":
                pending_submits += 1
            elif name == "_arrival":
                pending_arrivals += 1
        return {
            "active": system.tracker.n_active,
            "ready_queue": len(system.ready_queue),
            "parked": len(system.parked),
            "pending_submits": pending_submits,
            "pending_arrivals": pending_arrivals,
        }

    def _check_metrics_conservation(self) -> None:
        errors = self.system.collector.conservation_errors()
        if errors:
            self._violate(
                "metrics_conservation",
                "; ".join(errors),
                counters=self.system.collector.counters_dict())

    def _check_buffer_bounds(self) -> None:
        buffer = self.system.buffer
        capacity = getattr(buffer, "capacity", None)
        if capacity is None:
            return
        occupancy = len(buffer)
        if occupancy > capacity:
            self._violate(
                "buffer_bounds",
                f"buffer holds {occupancy} frames, capacity "
                f"{capacity}", occupancy=occupancy, capacity=capacity)
        for name in ("hits", "misses", "evictions"):
            value = getattr(buffer, name, 0)
            if value < 0:
                self._violate(
                    "buffer_bounds",
                    f"buffer counter {name} is negative ({value})",
                    counter=name, value=value)

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable picture of the cross-subsystem state."""
        system = self.system
        tracker = system.tracker
        return {
            "sim_time": system.sim.now,
            "events_seen": self.events_seen,
            "checks_run": self.checks_run,
            "populations": {
                "n_active": tracker.n_active,
                "n_state1": tracker.n_state1,
                "n_state2": tracker.n_state2,
                "n_state3": tracker.n_state3,
                "n_state4": tracker.n_state4,
            },
            "population_breakdown": self._population_breakdown(),
            "ready_queue": [txn.txn_id for txn in system.ready_queue],
            "lock_table": system.lock_table.dump(),
            "collector": system.collector.counters_dict(),
        }

    def _enrich_and_record(self, exc: InvariantViolation,
                           context: str) -> None:
        if context and not exc.context:
            exc.context = context
        if self.system is not None:
            if exc.sim_time is None:
                # Subsystem-level checks (e.g. the tracker's) don't know
                # the clock; stamp the violation here.
                exc.sim_time = self.system.sim.now
            exc.evidence.setdefault("state", self.snapshot())
        if self.config.evidence_dir:
            os.makedirs(self.config.evidence_dir, exist_ok=True)
            path = os.path.join(
                self.config.evidence_dir,
                f"violation-{self.violations:03d}-{exc.invariant}.json")
            payload = {
                "invariant": exc.invariant,
                "message": str(exc),
                "sim_time": exc.sim_time,
                "context": exc.context,
                "evidence": exc.evidence,
            }
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True,
                          default=repr)
            exc.evidence.setdefault("evidence_path", path)
