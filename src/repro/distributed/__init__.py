"""Distributed DBMS load control (paper Section 5, future work).

"We have considered only the case of a single, centralized DBMS.  The
question of how to add load control to a distributed DBMS with
decentralized control seems to be an interesting one, as load control
deadlocks must be carefully prevented."

This subpackage explores that question with a multi-site extension of
the paper's model: the database is range-partitioned across sites, each
site owns a CPU pool, a disk array, and a lock table, transactions
originate at a home site and access remote pages over a constant-delay
network, and each site runs its *own* Half-and-Half controller over the
transactions homed there.  See :mod:`repro.distributed.system` for the
modelling decisions and :mod:`repro.distributed.controllers` for how
admission stays deadlock-free.

The failure-realistic layer (:mod:`repro.distributed.failures`,
:mod:`repro.distributed.network`) adds deterministic site crashes and
network partitions, a lossy message transport with timeout/retry, a
real two-phase commit with in-doubt participant state, and
degraded-mode admission — all zero-cost when off: a run without a
fault plan and with ``failure_model=False`` is byte-identical to the
constant-delay model.
"""

from repro.distributed.config import DistributedParameters
from repro.distributed.partition import RangePartition
from repro.distributed.workload import DistributedWorkload
from repro.distributed.controllers import (
    PerSiteControllerSet,
    make_fixed_mpl_sites,
    make_half_and_half_sites,
    make_no_control_sites,
)
from repro.distributed.failures import (
    NetworkPartition,
    SiteCrash,
    SiteFaultPlan,
)
from repro.distributed.network import Network, ReliableCall
from repro.distributed.system import DistributedSystem
from repro.distributed.runner import run_distributed_simulation

__all__ = [
    "DistributedParameters",
    "RangePartition",
    "DistributedWorkload",
    "PerSiteControllerSet",
    "make_fixed_mpl_sites",
    "make_half_and_half_sites",
    "make_no_control_sites",
    "NetworkPartition",
    "SiteCrash",
    "SiteFaultPlan",
    "Network",
    "ReliableCall",
    "DistributedSystem",
    "run_distributed_simulation",
]
