"""Benchmark: Figure 18 — bounded wait queues, throughput."""

from repro.experiments.figures.fig18_bounded_wait import FIGURE


def test_fig18(run_figure):
    result = run_figure(FIGURE)
    plain = result.get("plain 2PL")
    limit1 = result.get("wait limit 1")
    limit2 = result.get("wait limit 2")
    hh = result.get("Half-and-Half")

    # Limit 1 performs worse than plain 2PL once resource contention is
    # modelled (abort-induced thrashing) — certainly no better.
    assert limit1[-1] < 1.05 * plain[-1]
    assert max(limit1) < 1.05 * max(plain)

    # Limit 2 behaves much like plain 2PL (queues longer than 2 are
    # rare anyway).
    assert abs(limit2[-1] - plain[-1]) < 0.35 * max(plain[-1], 1.0)

    # Neither approaches Half-and-Half at high load.
    assert hh[-1] > 1.2 * limit1[-1]
    assert hh[-1] > 1.2 * limit2[-1]
