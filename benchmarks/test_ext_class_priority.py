"""Extension (paper §5): class-discriminating admission.

The paper's future-work list asks whether Half-and-Half could
"discriminate between transaction classes in order to provide still
better performance for multi-class workloads".  This experiment runs
the two-class mix with FIFO admission and with a ClassPriorityPolicy
favouring the small-update OLTP class, and measures the per-class
shift.
"""

from repro.control.class_priority import ClassPriorityPolicy
from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.runner import run_simulation
from repro.experiments.studies import base_params
from repro.workload.mixed import MixedWorkload, paper_mixed_classes


def _factory(streams, params):
    return MixedWorkload(streams, params.db_size, paper_mixed_classes())


def test_ext_class_priority(benchmark, scale):
    def run():
        params = base_params(scale)
        fifo = run_simulation(params, HalfAndHalfController(),
                              workload_factory=_factory)
        favoured = run_simulation(
            params, HalfAndHalfController(), workload_factory=_factory,
            admission_order=ClassPriorityPolicy({"small-update": 1}))
        return fifo, favoured

    fifo, favoured = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Class-priority admission (favouring small-update):")
    for label, r in (("FIFO", fifo), ("priority", favoured)):
        for cls in ("small-update", "large-readonly"):
            s = r.per_class.get(cls)
            if s is None:
                continue
            print(f"  {label:<9} {cls:<16} commits={s.commits:<6} "
                  f"avg response={s.avg_response_time:.2f}s")

    # Favouring the OLTP class shifts commits toward it ...
    assert favoured.per_class["small-update"].commits > \
        fifo.per_class["small-update"].commits
    # ... at the expense of the reporting class.
    assert favoured.per_class["large-readonly"].commits <= \
        fifo.per_class["large-readonly"].commits
    # Overall throughput stays in the same ballpark (load control still
    # governs how many run; priority only reorders who).
    assert favoured.page_throughput.mean > \
        0.6 * fifo.page_throughput.mean
