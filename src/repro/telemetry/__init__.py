"""Observability: time-series probes, decision logs, structured export.

The telemetry layer watches a simulation the way the paper watches its
system — as trajectories, not endpoints:

* :class:`ProbeScheduler` samples the live populations, queues,
  utilizations, and lock-table statistics at a fixed simulated-time
  interval;
* :class:`DecisionLog` records every load-controller verdict with the
  evidence it acted on;
* :class:`TelemetrySession` bundles both with the event
  :class:`~repro.metrics.trace.Tracer` and an event-loop profiler and
  exports everything as deterministic JSONL plus a provenance manifest;
* :class:`SpanRecorder` accumulates per-transaction span timelines
  (ready-queue wait, cpu/disk service, lock waits with blame, restart
  gaps) and feeds :class:`LatencyAnalytics` — exact response-time
  percentiles, critical-path breakdowns, and the wait-chain blame
  table;
* :class:`ContentionMonitor` maintains per-page conflict/wait/abort
  heat and per-probe-tick wait-for-graph statistics (the hot-page
  table and ``contention.jsonl``);
* :mod:`repro.telemetry.online` hosts the streaming detectors —
  :class:`Welford`, :class:`EWMA`, :class:`Cusum` — and the
  :class:`OnlineRegimeMonitor` that turns them into typed
  :class:`RegimeChange` events (stable → pre_thrash → thrashing);
* :mod:`repro.telemetry.sweep` rolls every run directory under a sweep
  root into one ``sweep_summary.json`` (per-run onsets, per-curve
  knees, sweep-wide hot pages);
* :mod:`repro.telemetry.report` renders exported runs as a terminal
  dashboard (sparklines, thrashing onset, top aborters, latency).

Everything is zero-cost when disabled: one ``None`` check per hook, no
allocations, no extra events — and strictly observational when
enabled, so turning telemetry on never changes a trajectory.
"""

from repro.telemetry.contention import (
    ContentionMonitor,
    ContentionSample,
    PageHeat,
)
from repro.telemetry.decisions import (
    ControllerDecision,
    DecisionAction,
    DecisionLog,
)
from repro.telemetry.export import (
    TELEMETRY_FORMAT,
    TelemetryConfig,
    TelemetrySession,
    json_dump,
    jsonl_dump,
    trace_event_to_dict,
    write_cache_hit_manifest,
)
from repro.telemetry.latency import (
    QUANTILE_LABELS,
    LatencyAnalytics,
    LatencyHistogram,
)
from repro.telemetry.online import (
    EWMA,
    Cusum,
    OnlineRegimeMonitor,
    RegimeChange,
    RegimeDetector,
    Welford,
    detect_onset_cusum,
)
from repro.telemetry.perf import (
    PERF_FORMAT,
    AllocationProbe,
    PerfProfiler,
    chrome_trace_document,
    collapsed_stacks,
    page_class_of,
    speedscope_document,
)
from repro.telemetry.probes import ProbeSample, ProbeScheduler
from repro.telemetry.profiling import (
    EngineProfiler,
    canonical_qualname,
    subsystem_of,
)
from repro.telemetry.sites import (
    DistributedProbeScheduler,
    SiteProbeSample,
)
from repro.telemetry.report import (
    detect_thrashing_onset,
    render_latency_report,
    render_report,
    render_run_report,
    render_sites_report,
    sparkline,
    top_aborters,
)
from repro.telemetry.schemas import (
    CHROME_TRACE_SCHEMA,
    CONTENTION_SCHEMA,
    CONTENTION_SUMMARY_SCHEMA,
    DECISION_SCHEMA,
    LATENCY_SCHEMA,
    MANIFEST_SCHEMA,
    PERF_SCHEMA,
    PROBE_SCHEMA,
    REGIMES_SCHEMA,
    SITE_PROBE_SCHEMA,
    SPAN_SCHEMA,
    SPEEDSCOPE_SCHEMA,
    SWEEP_SUMMARY_SCHEMA,
    TRACE_SCHEMA,
    validate_jsonl,
    validate_record,
    validate_run_dir,
    validate_sweep_summary,
)
from repro.telemetry.spans import Span, SpanKind, SpanRecorder
from repro.telemetry.sweep import (
    find_knee,
    render_sweep_report,
    summarize_sweep,
    write_sweep_summary,
)

__all__ = [
    "ControllerDecision",
    "DecisionAction",
    "DecisionLog",
    "TELEMETRY_FORMAT",
    "TelemetryConfig",
    "TelemetrySession",
    "json_dump",
    "jsonl_dump",
    "trace_event_to_dict",
    "write_cache_hit_manifest",
    "ProbeSample",
    "ProbeScheduler",
    "SiteProbeSample",
    "DistributedProbeScheduler",
    "EngineProfiler",
    "subsystem_of",
    "canonical_qualname",
    "PERF_FORMAT",
    "PerfProfiler",
    "AllocationProbe",
    "page_class_of",
    "collapsed_stacks",
    "speedscope_document",
    "chrome_trace_document",
    "Span",
    "SpanKind",
    "SpanRecorder",
    "LatencyAnalytics",
    "LatencyHistogram",
    "QUANTILE_LABELS",
    "detect_thrashing_onset",
    "render_latency_report",
    "render_report",
    "render_run_report",
    "render_sites_report",
    "sparkline",
    "top_aborters",
    "ContentionMonitor",
    "ContentionSample",
    "PageHeat",
    "Welford",
    "EWMA",
    "Cusum",
    "RegimeChange",
    "RegimeDetector",
    "OnlineRegimeMonitor",
    "detect_onset_cusum",
    "find_knee",
    "render_sweep_report",
    "summarize_sweep",
    "write_sweep_summary",
    "CHROME_TRACE_SCHEMA",
    "CONTENTION_SCHEMA",
    "CONTENTION_SUMMARY_SCHEMA",
    "DECISION_SCHEMA",
    "LATENCY_SCHEMA",
    "MANIFEST_SCHEMA",
    "PERF_SCHEMA",
    "PROBE_SCHEMA",
    "REGIMES_SCHEMA",
    "SITE_PROBE_SCHEMA",
    "SPAN_SCHEMA",
    "SPEEDSCOPE_SCHEMA",
    "SWEEP_SUMMARY_SCHEMA",
    "TRACE_SCHEMA",
    "validate_jsonl",
    "validate_record",
    "validate_run_dir",
    "validate_sweep_summary",
]
