"""Tests for the repro-experiment CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig01" in out and "fig23" in out


def test_run_unknown_figure_fails(capsys):
    assert main(["run", "fig99"]) == 1
    assert "unknown figure" in capsys.readouterr().err


def test_run_figure_smoke(capsys):
    """Run the cheapest figure end to end through the CLI."""
    assert main(["run", "fig20", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "fig20" in out
    assert "paper claim" in out


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_bad_scale():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig07", "--scale", "gigantic"])
