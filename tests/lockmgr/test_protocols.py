"""Unit tests for the lock-protocol enum."""

from repro.lockmgr.protocols import LockProtocol


def test_two_phase_holds_read_locks():
    assert not LockProtocol.TWO_PHASE.releases_read_locks_early()


def test_degree_two_releases_read_locks():
    assert LockProtocol.DEGREE_TWO.releases_read_locks_early()


def test_values_are_stable():
    # These strings appear in configs and logs; pin them.
    assert LockProtocol.TWO_PHASE.value == "2PL"
    assert LockProtocol.DEGREE_TWO.value == "degree2"
