"""Figure 9: raw page rate versus transaction size.

The same sweep as Figure 8 but measuring pages processed by *all*
transactions, committed or aborted.  The paper's claim: at small sizes
the fixed MPLs admit too few transactions and do less total work; at
large sizes they do *more* raw work than Half-and-Half yet deliver lower
throughput — the extra pages belong to aborted (wasted) executions.
"""

from __future__ import annotations

from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.scales import Scale
from repro.experiments.studies import REFERENCE_MPLS, txn_size_study

__all__ = ["FIGURE", "run"]


def run(scale: Scale) -> FigureResult:
    study = txn_size_study(scale)
    series = {
        "Half-and-Half": [
            study.half_and_half[s].raw_page_rate.mean
            for s in study.sizes],
        "Optimal MPL": [
            study.optimal[s].raw_page_rate.mean for s in study.sizes],
    }
    for mpl in REFERENCE_MPLS:
        series[f"MPL {mpl}"] = [
            study.fixed[(mpl, s)].raw_page_rate.mean
            for s in study.sizes]
    return FigureResult(
        figure_id="fig09",
        title="Raw Page Rate vs transaction size (200 terminals)",
        x_label="mean transaction size (pages)",
        y_label="pages/second (committed + aborted)",
        x_values=[float(s) for s in study.sizes],
        series=series,
    )


FIGURE = FigureSpec(
    figure_id="fig09",
    title="Raw page rate across transaction sizes",
    paper_claim=("fixed MPLs under-work at small sizes and waste work on "
                 "aborts at large sizes"),
    run=run,
    tags=("half-and-half", "txn-size", "raw-rate"),
)
