"""Homogeneous workload: one transaction class (paper base case).

All transactions draw their readset size from a common uniform
distribution around ``tran_size`` and write each page read with
probability ``write_prob``.
"""

from __future__ import annotations

from repro.dbms.config import SimulationParameters
from repro.dbms.transaction import Transaction
from repro.sim.rng import RandomStreams

from repro.workload.base import WorkloadGenerator

__all__ = ["HomogeneousWorkload"]


class HomogeneousWorkload(WorkloadGenerator):
    """Single-class workload driven directly by the simulation parameters."""

    def __init__(self, streams: RandomStreams, params: SimulationParameters):
        super().__init__(streams)
        self.params = params

    @property
    def name(self) -> str:
        return (f"Homogeneous(size={self.params.tran_size}, "
                f"w={self.params.write_prob})")

    def make_transaction(self, txn_id: int, terminal_id: int,
                         now: float) -> Transaction:
        p = self.params
        return self._build(txn_id, terminal_id, now,
                           db_size=p.db_size,
                           mean_size=p.tran_size,
                           write_prob=p.write_prob)
