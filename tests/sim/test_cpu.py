"""Unit tests for the CPU pool (priority FCFS)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.resources.cpu import CpuPool, Priority


def test_invalid_server_count_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        CpuPool(sim, 0)


def test_negative_service_time_rejected():
    sim = Simulator()
    cpu = CpuPool(sim, 1)
    with pytest.raises(ConfigurationError):
        cpu.request(-1.0, lambda: None)


def test_single_server_fcfs_completion_order():
    sim = Simulator()
    cpu = CpuPool(sim, 1)
    done = []
    cpu.request(2.0, done.append, "a")
    cpu.request(1.0, done.append, "b")   # shorter but queued behind a
    cpu.request(1.0, done.append, "c")
    sim.run()
    assert done == ["a", "b", "c"]
    assert sim.now == 4.0


def test_cc_priority_jumps_normal_queue():
    sim = Simulator()
    cpu = CpuPool(sim, 1)
    done = []
    cpu.request(1.0, done.append, "running")
    cpu.request(1.0, done.append, "normal-1")
    cpu.request(1.0, done.append, "cc", priority=Priority.CC)
    cpu.request(1.0, done.append, "normal-2")
    sim.run()
    # The in-service request is not preempted; the CC request then runs
    # before the earlier-queued normal requests.
    assert done == ["running", "cc", "normal-1", "normal-2"]


def test_multiple_servers_run_in_parallel():
    sim = Simulator()
    cpu = CpuPool(sim, 2)
    done_times = {}
    cpu.request(3.0, lambda: done_times.setdefault("a", sim.now))
    cpu.request(3.0, lambda: done_times.setdefault("b", sim.now))
    cpu.request(3.0, lambda: done_times.setdefault("c", sim.now))
    sim.run()
    assert done_times["a"] == 3.0
    assert done_times["b"] == 3.0
    assert done_times["c"] == 6.0   # waited for a free server


def test_free_servers_tracking():
    sim = Simulator()
    cpu = CpuPool(sim, 2)
    assert cpu.free_servers == 2
    cpu.request(1.0, lambda: None)
    assert cpu.free_servers == 1
    cpu.request(1.0, lambda: None)
    cpu.request(1.0, lambda: None)
    assert cpu.free_servers == 0
    assert cpu.queue_length() == 1
    sim.run()
    assert cpu.free_servers == 2
    assert cpu.queue_length() == 0


def test_zero_service_time_completes():
    sim = Simulator()
    cpu = CpuPool(sim, 1)
    done = []
    cpu.request(0.0, done.append, "instant")
    sim.run()
    assert done == ["instant"]
    assert sim.now == 0.0


def test_utilization_accounting():
    sim = Simulator()
    cpu = CpuPool(sim, 1)
    cpu.request(4.0, lambda: None)
    sim.run()
    assert cpu.busy_time == pytest.approx(4.0)
    assert cpu.utilization(8.0) == pytest.approx(0.5)
    assert cpu.utilization(0.0) == 0.0
    assert cpu.requests_served == 1


def test_completion_callback_can_issue_new_request():
    sim = Simulator()
    cpu = CpuPool(sim, 1)
    done = []

    def chain(name, depth):
        done.append(name)
        if depth < 2:
            cpu.request(1.0, chain, f"{name}+", depth + 1)

    cpu.request(1.0, chain, "r", 0)
    cpu.request(1.0, done.append, "queued")
    sim.run()
    # The queued request was waiting first, so it is served before the
    # chained follow-up (FCFS).
    assert done == ["r", "queued", "r+", "r++"]


def test_requests_served_counts_all():
    sim = Simulator()
    cpu = CpuPool(sim, 3)
    for _ in range(7):
        cpu.request(1.0, lambda: None)
    sim.run()
    assert cpu.requests_served == 7
