"""Unit tests for the homogeneous workload generator."""

from __future__ import annotations

from repro.dbms.config import SimulationParameters
from repro.sim.rng import RandomStreams
from repro.workload.base import sample_readset_size
from repro.workload.homogeneous import HomogeneousWorkload


def _gen(seed=1, **overrides):
    params = SimulationParameters(**overrides)
    return HomogeneousWorkload(RandomStreams(seed), params)


def test_readset_sizes_in_paper_range():
    """Base case: mean 8 -> uniform on [4, 12]."""
    gen = _gen()
    sizes = [gen.make_transaction(i, 0, 0.0).num_reads
             for i in range(300)]
    assert min(sizes) == 4
    assert max(sizes) == 12
    assert all(4 <= s <= 12 for s in sizes)


def test_mean_size_approximately_correct():
    gen = _gen()
    n = 2000
    mean = sum(gen.make_transaction(i, 0, 0.0).num_reads
               for i in range(n)) / n
    assert 7.6 < mean < 8.4


def test_pages_distinct_and_in_database():
    gen = _gen(db_size=100, tran_size=20)
    for i in range(50):
        txn = gen.make_transaction(i, 0, 0.0)
        assert len(set(txn.readset)) == len(txn.readset)
        assert all(0 <= p < 100 for p in txn.readset)


def test_writeset_subset_of_readset():
    gen = _gen()
    for i in range(100):
        txn = gen.make_transaction(i, 0, 0.0)
        assert txn.writeset <= set(txn.readset)


def test_write_prob_zero_gives_read_only():
    gen = _gen(write_prob=0.0)
    assert all(gen.make_transaction(i, 0, 0.0).is_read_only
               for i in range(50))


def test_write_prob_one_writes_everything():
    gen = _gen(write_prob=1.0)
    for i in range(50):
        txn = gen.make_transaction(i, 0, 0.0)
        assert txn.writeset == set(txn.readset)


def test_write_fraction_approximately_correct():
    gen = _gen()   # write_prob 0.25
    reads = writes = 0
    for i in range(1000):
        txn = gen.make_transaction(i, 0, 0.0)
        reads += txn.num_reads
        writes += txn.num_writes
    assert 0.2 < writes / reads < 0.3


def test_same_seed_same_transactions():
    a = _gen(seed=9)
    b = _gen(seed=9)
    for i in range(20):
        ta = a.make_transaction(i, 0, 0.0)
        tb = b.make_transaction(i, 0, 0.0)
        assert ta.readset == tb.readset
        assert ta.writeset == tb.writeset


def test_transaction_metadata_passed_through():
    gen = _gen()
    txn = gen.make_transaction(42, 7, 3.5)
    assert txn.txn_id == 42
    assert txn.terminal_id == 7
    assert txn.timestamp == 3.5


def test_sample_readset_size_minimum_one():
    streams = RandomStreams(1)
    sizes = {sample_readset_size(streams, 1) for _ in range(50)}
    assert sizes == {1}


def test_name_describes_workload():
    assert "8" in _gen().name
