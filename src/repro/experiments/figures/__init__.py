"""Registry of reproduced paper figures.

Each ``figNN_*`` module reproduces one figure of the paper's evaluation;
``ext_*`` modules reconstruct experiments the paper describes but does
not plot.  Use :func:`get_figure` / :func:`all_figures` to access them
programmatically, or the ``repro-experiment`` CLI.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ExperimentError
from repro.experiments.figures import (
    ext_controller_bakeoff,
    ext_distributed,
    ext_distributed_failures,
    ext_fault_recovery,
    ext_write_prob,
    fig01_thrashing,
    fig02_fixed_mpl_mismatch,
    fig03_populations_base,
    fig04_populations_large,
    fig07_base_case,
    fig08_txn_size_thruput,
    fig09_txn_size_raw,
    fig10_txn_size_mpl,
    fig11_db_size,
    fig12_mixed,
    fig13_mixed_degree2,
    fig14_varying_slow,
    fig15_varying_fast,
    fig16_tay_thruput,
    fig17_tay_mpl,
    fig18_bounded_wait,
    fig19_bounded_wait_raw,
    fig20_maturity_fraction,
    fig21_maturity_cap,
    fig22_buffer_small,
    fig23_buffer_full,
)
from repro.experiments.figures.base import FigureResult, FigureSpec

__all__ = ["FigureResult", "FigureSpec", "REGISTRY", "get_figure",
           "all_figures"]

_MODULES = [
    fig01_thrashing,
    fig02_fixed_mpl_mismatch,
    fig03_populations_base,
    fig04_populations_large,
    fig07_base_case,
    fig08_txn_size_thruput,
    fig09_txn_size_raw,
    fig10_txn_size_mpl,
    fig11_db_size,
    fig12_mixed,
    fig13_mixed_degree2,
    fig14_varying_slow,
    fig15_varying_fast,
    fig16_tay_thruput,
    fig17_tay_mpl,
    fig18_bounded_wait,
    fig19_bounded_wait_raw,
    fig20_maturity_fraction,
    fig21_maturity_cap,
    fig22_buffer_small,
    fig23_buffer_full,
    ext_write_prob,
    ext_distributed,
    ext_distributed_failures,
    ext_fault_recovery,
    ext_controller_bakeoff,
]

REGISTRY: Dict[str, FigureSpec] = {
    module.FIGURE.figure_id: module.FIGURE for module in _MODULES
}


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure by id (e.g. ``"fig07"``)."""
    try:
        return REGISTRY[figure_id]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; "
            f"known: {', '.join(sorted(REGISTRY))}") from None


def all_figures() -> List[FigureSpec]:
    """Every registered figure, in paper order."""
    return [module.FIGURE for module in _MODULES]
