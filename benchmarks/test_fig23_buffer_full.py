"""Benchmark: Figure 23 — whole database buffered (CPU-bound)."""

from repro.experiments.figures.fig23_buffer_full import FIGURE


def test_fig23(run_figure):
    result = run_figure(FIGURE)
    hh = result.get("Half-and-Half")
    raw = result.get("2PL (no load control)")

    # Thrashing persists even with every page in memory (it is a data-
    # contention problem, not an I/O problem) and H&H still controls it.
    assert raw[-1] < 0.85 * max(raw)
    assert hh[-1] > raw[-1]
    assert hh[-1] > 0.70 * max(hh)   # paper: slightly weaker here

    # The CPU-bound system far exceeds the disk-bound ceiling of
    # ~143 pages/s (5 disks / 35 ms) from the bufferless base case.
    assert max(hh) > 150.0
