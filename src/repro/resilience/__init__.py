"""Fault tolerance for multi-run sweeps.

A multi-hour parameter sweep must survive the failures that long batch
jobs actually see: a worker process that segfaults or is OOM-killed, a
run that hangs, a Ctrl-C half way through, a cache entry truncated by a
power cut.  This package holds the policy and bookkeeping types the
executor (:func:`repro.experiments.parallel.run_specs`) uses to recover
from all of them without discarding completed work:

* :class:`ResiliencePolicy` — how hard to try: per-spec retries with
  exponential backoff, a batch-wide retry budget, a per-attempt
  wall-clock timeout, and whether failures abort the batch (strict) or
  come back as typed sentinels (partial delivery).
* :class:`AttemptRecord` / :class:`FailedRun` — the full attempt
  history of a run that exhausted its retries; delivered in-place in
  the result list under partial delivery, attached to the
  :class:`~repro.errors.SpecExecutionError` raised in strict mode.
* :class:`SweepCheckpoint` — an append-only journal of completed spec
  keys next to the result cache, flushed per completion (and on
  SIGINT), so a killed sweep resumes from the remainder.

Determinism survives all of it: a retry re-executes the same
:class:`~repro.experiments.parallel.RunSpec`, and every run seeds its
own random streams from its parameters, so a batch with crashes and
retries is bit-identical to a clean serial batch.
"""

from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.failures import (
    AttemptRecord,
    FailedRun,
    FailureKind,
    is_failed,
    split_results,
)
from repro.resilience.policy import ResiliencePolicy

__all__ = [
    "AttemptRecord",
    "FailedRun",
    "FailureKind",
    "ResiliencePolicy",
    "SweepCheckpoint",
    "is_failed",
    "split_results",
]
