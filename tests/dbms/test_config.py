"""Unit tests for SimulationParameters (paper Table 2 defaults)."""

from __future__ import annotations

import pytest

from repro.dbms.config import SimulationParameters
from repro.errors import ConfigurationError


def test_defaults_match_paper_table2():
    p = SimulationParameters()
    assert p.db_size == 1000
    assert p.tran_size == 8
    assert p.write_prob == 0.25
    assert p.num_terms == 200
    assert p.think_time == 0.0
    assert p.page_io == pytest.approx(0.035)
    assert p.page_cpu == pytest.approx(0.005)
    assert p.num_cpus == 1
    assert p.num_disks == 5


def test_default_model_options():
    p = SimulationParameters()
    assert p.buf_size is None          # bufferless by default
    assert p.lock_upgrades             # footnote 1 behaviour
    assert p.locking_enabled
    assert p.cc_cpu == 0.0             # folded into page_cpu
    assert p.estimate_error == 1.0


def test_measurement_window_helpers():
    p = SimulationParameters(warmup_time=10.0, num_batches=4,
                             batch_time=25.0)
    assert p.measurement_time == 100.0
    assert p.total_time == 110.0


def test_replace_creates_validated_copy():
    p = SimulationParameters()
    q = p.replace(num_terms=50)
    assert q.num_terms == 50
    assert p.num_terms == 200          # original untouched
    with pytest.raises(ConfigurationError):
        p.replace(num_terms=0)


@pytest.mark.parametrize("field,value", [
    ("db_size", 0),
    ("tran_size", 0),
    ("write_prob", -0.1),
    ("write_prob", 1.1),
    ("num_terms", 0),
    ("think_time", -1.0),
    ("page_io", -0.001),
    ("page_cpu", -0.001),
    ("num_cpus", 0),
    ("num_disks", 0),
    ("buf_size", 0),
    ("cc_cpu", -0.1),
    ("estimate_error", 0.0),
    ("estimate_error", -1.0),
    ("warmup_time", -1.0),
    ("batch_time", 0.0),
    ("num_batches", 0),
])
def test_invalid_values_rejected(field, value):
    with pytest.raises(ConfigurationError):
        SimulationParameters(**{field: value})


def test_readset_cannot_exceed_database():
    # tran_size 100 -> max readset 150 > db_size 120
    with pytest.raises(ConfigurationError):
        SimulationParameters(db_size=120, tran_size=100)
    # exactly fits
    SimulationParameters(db_size=150, tran_size=100)
