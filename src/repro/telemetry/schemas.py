"""JSON schemas for the telemetry files, and a dependency-free validator.

Each run directory holds four deterministic artifacts:

* ``manifest.json``   — provenance: seed, parameters, spec hash, package
  fingerprint, record counts (:data:`MANIFEST_SCHEMA`);
* ``probes.jsonl``    — one :data:`PROBE_SCHEMA` record per sample;
* ``site_probes.jsonl`` (distributed runs) — one
  :data:`SITE_PROBE_SCHEMA` record per site per sample;
* ``decisions.jsonl`` — one :data:`DECISION_SCHEMA` record per verdict;
* ``trace.jsonl``     — one :data:`TRACE_SCHEMA` record per transition;

and, when span recording is enabled, two more:

* ``spans.jsonl``     — one :data:`SPAN_SCHEMA` record per closed span;
* ``latency.json``    — the :data:`LATENCY_SCHEMA` analytics summary;

when contention monitoring is enabled:

* ``contention.jsonl`` — one :data:`CONTENTION_SCHEMA` record per
  probe tick (wait-for-graph statistics);
* ``contention.json``  — the :data:`CONTENTION_SUMMARY_SCHEMA` hot-page
  rollup;

when online regime detection is enabled:

* ``regimes.json``    — the :data:`REGIMES_SCHEMA` transition record;

and, at the *root* of a sweep directory after ``telemetry sweep``:

* ``sweep_summary.json`` — the :data:`SWEEP_SUMMARY_SCHEMA` rollup;

when perf profiling is enabled, the wall-clock attribution artifacts
(non-deterministic like ``profile.json``, but schema-pinned so the
exporters cannot silently drift):

* ``perf.json``             — the :data:`PERF_SCHEMA` attribution
  summary (logical stacks, throughput ticks, allocation sites);
* ``flame.speedscope.json`` — a :data:`SPEEDSCOPE_SCHEMA` speedscope
  flamegraph document;
* ``trace.json``            — a :data:`CHROME_TRACE_SCHEMA` Chrome
  trace-event document (Perfetto-loadable);

plus the wall-clock ``profile.json``, which is deliberately *not*
byte-deterministic and therefore not schema-pinned beyond being an
object.

The validator implements the subset of JSON Schema the schemas use
(``type`` with unions, ``required``, ``properties``, ``items`` for
arrays, and recursion into object-valued properties that carry their
own ``properties``/``required``) so CI can check emitted files without
a third-party ``jsonschema`` dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = [
    "PROBE_SCHEMA",
    "SITE_PROBE_SCHEMA",
    "DECISION_SCHEMA",
    "TRACE_SCHEMA",
    "SPAN_SCHEMA",
    "LATENCY_SCHEMA",
    "MANIFEST_SCHEMA",
    "CONTENTION_SCHEMA",
    "CONTENTION_SUMMARY_SCHEMA",
    "REGIMES_SCHEMA",
    "SWEEP_SUMMARY_SCHEMA",
    "PERF_SCHEMA",
    "SPEEDSCOPE_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "validate_record",
    "validate_jsonl",
    "validate_run_dir",
    "validate_sweep_summary",
]


PROBE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "time", "n_active", "ready_queue",
        "n_state1", "n_state2", "n_state3", "n_state4",
        "frac_state1", "frac_state3", "blocked_frac",
        "cpu_util", "disk_util", "cpu_scale", "disk_scale",
        "conflict_ratio",
        "locks_held", "locked_pages",
        "cum_lock_requests", "cum_lock_blocks",
        "cum_commits", "cum_aborts", "cum_aborts_by_reason",
        "cum_pages", "parked",
    ],
    "properties": {
        "time": {"type": "number"},
        "n_active": {"type": "integer"},
        "ready_queue": {"type": "integer"},
        "n_state1": {"type": "integer"},
        "n_state2": {"type": "integer"},
        "n_state3": {"type": "integer"},
        "n_state4": {"type": "integer"},
        "frac_state1": {"type": "number"},
        "frac_state3": {"type": "number"},
        "blocked_frac": {"type": "number"},
        "cpu_util": {"type": "number"},
        "disk_util": {"type": "number"},
        "cpu_scale": {"type": "number"},
        "disk_scale": {"type": "number"},
        "conflict_ratio": {"type": ["number", "null"]},
        "locks_held": {"type": "integer"},
        "locked_pages": {"type": "integer"},
        "cum_lock_requests": {"type": "integer"},
        "cum_lock_blocks": {"type": "integer"},
        "cum_commits": {"type": "integer"},
        "cum_aborts": {"type": "integer"},
        "cum_aborts_by_reason": {"type": "object"},
        "cum_pages": {"type": "integer"},
        "parked": {"type": "integer"},
    },
}

SITE_PROBE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "time", "site", "up", "degraded",
        "n_active", "ready_queue", "blocked_frac",
        "cpu_util", "disk_util", "in_doubt",
        "cum_commits", "cum_lock_requests", "cum_lock_blocks",
    ],
    "properties": {
        "time": {"type": "number"},
        "site": {"type": "integer"},
        "up": {"type": "boolean"},
        "degraded": {"type": "boolean"},
        "n_active": {"type": "integer"},
        "ready_queue": {"type": "integer"},
        "blocked_frac": {"type": "number"},
        "cpu_util": {"type": "number"},
        "disk_util": {"type": "number"},
        "in_doubt": {"type": "integer"},
        "cum_commits": {"type": "integer"},
        "cum_lock_requests": {"type": "integer"},
        "cum_lock_blocks": {"type": "integer"},
    },
}

DECISION_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "time", "controller", "action", "region",
        "n_active", "n_state1", "n_state3",
        "frac_state1", "frac_state3",
        "txn_id", "measure", "threshold", "detail",
    ],
    "properties": {
        "time": {"type": "number"},
        "controller": {"type": "string"},
        "action": {"type": "string"},
        "region": {"type": ["string", "null"]},
        "n_active": {"type": "integer"},
        "n_state1": {"type": "integer"},
        "n_state3": {"type": "integer"},
        "frac_state1": {"type": "number"},
        "frac_state3": {"type": "number"},
        "txn_id": {"type": ["integer", "null"]},
        "measure": {"type": ["number", "null"]},
        "threshold": {"type": ["number", "null"]},
        "detail": {"type": "string"},
    },
}

TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["time", "type", "txn_id", "detail"],
    "properties": {
        "time": {"type": "number"},
        "type": {"type": "string"},
        "txn_id": {"type": "integer"},
        "detail": {"type": "string"},
    },
}

SPAN_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["txn_id", "kind", "start", "end", "attempt",
                 "page", "blocker", "depth"],
    "properties": {
        "txn_id": {"type": "integer"},
        "kind": {"type": "string"},
        "start": {"type": "number"},
        "end": {"type": "number"},
        "attempt": {"type": "integer"},
        # Only lock_wait spans carry a page/blocker/depth; blocker is
        # additionally null when the blocking order is empty at block
        # time (the request raced a release inside one event).
        "page": {"type": ["integer", "null"]},
        "blocker": {"type": ["integer", "null"]},
        "depth": {"type": ["integer", "null"]},
    },
}

LATENCY_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "committed", "restarts_of_committed",
        "response", "lock_wait", "service", "ready_wait",
        "phase_seconds", "phase_fractions", "blame",
    ],
    "properties": {
        "committed": {"type": "integer"},
        "restarts_of_committed": {"type": "integer"},
        "response": {"type": "object"},
        "lock_wait": {"type": "object"},
        "service": {"type": "object"},
        "ready_wait": {"type": "object"},
        "phase_seconds": {"type": "object"},
        "phase_fractions": {"type": "object"},
        "blame": {"type": "object"},
    },
}

MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "seed", "code_fingerprint", "records"],
    "properties": {
        "format": {"type": "string"},
        "seed": {"type": "integer"},
        "params": {"type": "object"},
        "controller": {"type": ["string", "null"]},
        "workload": {"type": ["string", "null"]},
        "sim_time": {"type": ["number", "null"]},
        "probe_interval": {"type": ["number", "null"]},
        "code_fingerprint": {"type": "string"},
        "spec_key": {"type": ["string", "null"]},
        "tag": {"type": ["string", "null"]},
        "cache_hit": {"type": "boolean"},
        "records": {"type": "object"},
    },
}


CONTENTION_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "time", "waiters", "wait_edges",
        "max_chain_depth", "mean_chain_depth",
        "max_queue_depth", "mean_queue_depth",
        "contested_pages", "locked_pages",
        "cum_conflicts", "cum_wait_seconds", "cum_contention_aborts",
    ],
    "properties": {
        "time": {"type": "number"},
        "waiters": {"type": "integer"},
        "wait_edges": {"type": "integer"},
        "max_chain_depth": {"type": "integer"},
        "mean_chain_depth": {"type": "number"},
        "max_queue_depth": {"type": "integer"},
        "mean_queue_depth": {"type": "number"},
        "contested_pages": {"type": "integer"},
        "locked_pages": {"type": "integer"},
        "cum_conflicts": {"type": "integer"},
        "cum_wait_seconds": {"type": "number"},
        "cum_contention_aborts": {"type": "integer"},
    },
}

_HOT_PAGE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["page", "conflicts", "wait_seconds", "aborts"],
    "properties": {
        "page": {"type": ["integer", "string"]},
        "conflicts": {"type": "integer"},
        "wait_seconds": {"type": "number"},
        "aborts": {"type": "integer"},
    },
}

CONTENTION_SUMMARY_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "conflicts", "wait_seconds",
                 "aborts_while_waiting", "contended_pages", "hot_pages"],
    "properties": {
        "format": {"type": "string"},
        "conflicts": {"type": "integer"},
        "wait_seconds": {"type": "number"},
        "aborts_while_waiting": {"type": "integer"},
        "contended_pages": {"type": "integer"},
        "hot_pages": {"type": "array", "items": _HOT_PAGE_SCHEMA},
    },
}

REGIMES_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "final_regime", "onset_cusum",
                 "changes", "signals"],
    "properties": {
        "format": {"type": "string"},
        "final_regime": {"type": "string"},
        "onset_cusum": {"type": ["number", "null"]},
        "changes": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["time", "old_regime", "new_regime",
                             "signal", "measure", "threshold"],
                "properties": {
                    "time": {"type": "number"},
                    "old_regime": {"type": "string"},
                    "new_regime": {"type": "string"},
                    "signal": {"type": "string"},
                    "measure": {"type": ["number", "null"]},
                    "threshold": {"type": ["number", "null"]},
                    "n_active": {"type": "integer"},
                    "n_state1": {"type": "integer"},
                    "n_state3": {"type": "integer"},
                },
            },
        },
        "signals": {"type": "object"},
    },
}

SWEEP_SUMMARY_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "runs", "curves", "hot_pages"],
    "properties": {
        "format": {"type": "string"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["run", "cache_hit"],
                "properties": {
                    "run": {"type": "string"},
                    "cache_hit": {"type": "boolean"},
                    "controller": {"type": ["string", "null"]},
                    "workload": {"type": ["string", "null"]},
                    "locking_enabled": {"type": ["boolean", "null"]},
                    "num_terms": {"type": ["integer", "null"]},
                    "seed": {"type": ["integer", "null"]},
                    "sim_time": {"type": ["number", "null"]},
                    "throughput": {"type": ["number", "null"]},
                    "page_throughput": {"type": ["number", "null"]},
                    "onset_threshold": {"type": ["number", "null"]},
                    "onset_cusum": {"type": ["number", "null"]},
                    "final_regime": {"type": ["string", "null"]},
                    "hot_pages": {"type": "array",
                                  "items": _HOT_PAGE_SCHEMA},
                },
            },
        },
        "curves": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["label", "points", "knee"],
                "properties": {
                    "label": {"type": "string"},
                    "points": {"type": "array"},
                    "knee": {"type": ["object", "null"]},
                },
            },
        },
        "hot_pages": {"type": "array", "items": _HOT_PAGE_SCHEMA},
    },
}


_PERF_STACK_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["phase", "subsystem", "event_type", "page_class",
                 "events", "seconds", "ns_per_event"],
    "properties": {
        "phase": {"type": "string"},
        "subsystem": {"type": "string"},
        "event_type": {"type": "string"},
        "page_class": {"type": "string"},
        "events": {"type": "integer"},
        "seconds": {"type": "number"},
        "ns_per_event": {"type": "number"},
    },
}

_PERF_TICK_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["time", "events", "wall_seconds", "events_per_sec"],
    "properties": {
        "time": {"type": "number"},
        "events": {"type": "integer"},
        "wall_seconds": {"type": "number"},
        "events_per_sec": {"type": "number"},
        # Present only when the allocation probe is attached.
        "gc_collections": {"type": "integer"},
        "gc_collected": {"type": "integer"},
        "traced_kb": {"type": "number"},
    },
}

PERF_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "events", "wall_seconds", "callback_seconds",
                 "events_per_second", "phases", "stacks", "ticks",
                 "alloc"],
    "properties": {
        "format": {"type": "string"},
        "events": {"type": "integer"},
        "wall_seconds": {"type": "number"},
        "callback_seconds": {"type": "number"},
        "events_per_second": {"type": "number"},
        "phases": {"type": "object"},
        "stacks": {"type": "array", "items": _PERF_STACK_SCHEMA},
        "ticks": {"type": "array", "items": _PERF_TICK_SCHEMA},
        "alloc": {
            "type": ["object", "null"],
            "required": ["peak_traced_kb", "top_sites"],
            "properties": {
                "peak_traced_kb": {"type": "number"},
                "top_sites": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["site", "kb", "count"],
                        "properties": {
                            "site": {"type": "string"},
                            "kb": {"type": "number"},
                            "count": {"type": "integer"},
                        },
                    },
                },
            },
        },
    },
}

SPEEDSCOPE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["$schema", "shared", "profiles", "activeProfileIndex"],
    "properties": {
        "$schema": {"type": "string"},
        "name": {"type": "string"},
        "exporter": {"type": "string"},
        "activeProfileIndex": {"type": "integer"},
        "shared": {
            "type": "object",
            "required": ["frames"],
            "properties": {
                "frames": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["name"],
                        "properties": {"name": {"type": "string"}},
                    },
                },
            },
        },
        "profiles": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["type", "name", "unit", "startValue",
                             "endValue", "samples", "weights"],
                "properties": {
                    "type": {"type": "string"},
                    "name": {"type": "string"},
                    "unit": {"type": "string"},
                    "startValue": {"type": "number"},
                    "endValue": {"type": "number"},
                    "samples": {"type": "array",
                                "items": {"type": "array"}},
                    "weights": {"type": "array",
                                "items": {"type": "number"}},
                },
            },
        },
    },
}

CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit", "otherData"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"type": "string"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string"},
        "otherData": {"type": "object"},
    },
}


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
    "array": lambda v: isinstance(v, list),
    # bool is an int subclass; a schema saying integer/number means a
    # real number, so booleans are rejected explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
}


def _type_ok(value: Any, expected: Union[str, List[str]]) -> bool:
    names = [expected] if isinstance(expected, str) else expected
    return any(_TYPE_CHECKS[name](value) for name in names)


def validate_record(record: Any, schema: Dict[str, Any],
                    where: str = "record") -> List[str]:
    """Check one decoded value against a schema; returns error strings.

    Object schemas check ``required``/``properties`` (recursing into
    object-valued properties and array items); scalar and array
    schemas check the value's type and, for arrays, recurse into
    ``items`` — so a schema can describe e.g. the speedscope samples'
    arrays of frame indices, not just rows of objects.
    """
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None and not _type_ok(record, expected):
        return [f"{where}: has type {type(record).__name__}, "
                f"expected {expected}"]
    if isinstance(record, list):
        items = schema.get("items")
        if items is not None:
            for index, item in enumerate(record):
                errors.extend(validate_record(
                    item, items, where=f"{where}[{index}]"))
        return errors
    if not isinstance(record, dict):
        if expected is None:
            return [f"{where}: expected an object, "
                    f"got {type(record).__name__}"]
        return errors
    for name in schema.get("required", ()):
        if name not in record:
            errors.append(f"{where}: missing required field {name!r}")
    for name, spec in schema.get("properties", {}).items():
        if name not in record:
            continue
        value = record[name]
        expected = spec.get("type")
        if expected is not None and not _type_ok(value, expected):
            errors.append(
                f"{where}: field {name!r} has type "
                f"{type(value).__name__}, expected {expected}")
            continue
        items = spec.get("items")
        if items is not None and isinstance(value, list):
            for index, item in enumerate(value):
                errors.extend(validate_record(
                    item, items, where=f"{where}.{name}[{index}]"))
        # Recurse into object-valued properties that pin their own
        # structure (e.g. the speedscope "shared" block or the perf
        # "alloc" section).
        if (isinstance(value, dict)
                and ("properties" in spec or "required" in spec)):
            errors.extend(validate_record(
                value, spec, where=f"{where}.{name}"))
    return errors


def validate_jsonl(path: Union[str, Path],
                   schema: Dict[str, Any]) -> List[str]:
    """Validate every line of a JSONL file; returns error strings."""
    path = Path(path)
    errors: List[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"{path.name}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: invalid JSON ({exc})")
            continue
        errors.extend(validate_record(record, schema, where=where))
    return errors


def _validate_json_file(path: Path, schema: Dict[str, Any],
                        errors: List[str]) -> None:
    """Validate one single-document JSON file if it exists."""
    if not path.is_file():
        return
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path}: invalid ({exc})")
        return
    errors.extend(validate_record(document, schema, where=path.name))


def validate_run_dir(run_dir: Union[str, Path]) -> List[str]:
    """Validate one telemetry run directory; returns error strings.

    The manifest is mandatory.  The JSONL streams are validated when
    present; a cache-hit run records provenance only, so their absence
    is not an error.  Every file is checked even when an earlier one
    failed — a broken manifest (e.g. from a killed run) must not mask
    problems in the streams next to it.
    """
    run_dir = Path(run_dir)
    errors: List[str] = []

    manifest_path = run_dir / "manifest.json"
    if not manifest_path.is_file():
        errors.append(f"{run_dir}: missing manifest.json")
    else:
        _validate_json_file(manifest_path, MANIFEST_SCHEMA, errors)

    for filename, schema in (("probes.jsonl", PROBE_SCHEMA),
                             ("site_probes.jsonl", SITE_PROBE_SCHEMA),
                             ("decisions.jsonl", DECISION_SCHEMA),
                             ("trace.jsonl", TRACE_SCHEMA),
                             ("spans.jsonl", SPAN_SCHEMA),
                             ("contention.jsonl", CONTENTION_SCHEMA)):
        path = run_dir / filename
        if path.is_file():
            errors.extend(validate_jsonl(path, schema))

    _validate_json_file(run_dir / "latency.json", LATENCY_SCHEMA, errors)
    _validate_json_file(run_dir / "contention.json",
                        CONTENTION_SUMMARY_SCHEMA, errors)
    _validate_json_file(run_dir / "regimes.json", REGIMES_SCHEMA, errors)
    _validate_json_file(run_dir / "perf.json", PERF_SCHEMA, errors)
    _validate_json_file(run_dir / "flame.speedscope.json",
                        SPEEDSCOPE_SCHEMA, errors)
    _validate_json_file(run_dir / "trace.json", CHROME_TRACE_SCHEMA,
                        errors)
    return errors


def validate_sweep_summary(path: Union[str, Path]) -> List[str]:
    """Validate a ``sweep_summary.json`` written by ``telemetry sweep``."""
    errors: List[str] = []
    _validate_json_file(Path(path), SWEEP_SUMMARY_SCHEMA, errors)
    return errors
