"""Tests for figure/result export and re-import."""

from __future__ import annotations

import csv
import json

from repro.experiments.export import (
    figure_from_json,
    figure_to_csv,
    figure_to_json,
    results_to_dict,
)
from repro.experiments.figures.base import FigureResult


def _figure():
    return FigureResult(
        figure_id="figX", title="Demo", x_label="terminals",
        y_label="pages/s", x_values=[5.0, 10.0],
        series={"a": [1.5, 2.5], "b": [None, 4.0]},
        notes="demo note")


def test_csv_round_trip(tmp_path):
    path = tmp_path / "fig.csv"
    figure_to_csv(_figure(), path)
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["terminals", "a", "b"]
    assert rows[1] == ["5.0", "1.5", ""]
    assert rows[2] == ["10.0", "2.5", "4.0"]


def test_json_round_trip(tmp_path):
    path = tmp_path / "fig.json"
    original = _figure()
    figure_to_json(original, path)
    loaded = figure_from_json(path)
    assert loaded.figure_id == original.figure_id
    assert loaded.x_values == original.x_values
    assert loaded.series == original.series
    assert loaded.notes == original.notes


def test_json_is_valid_json(tmp_path):
    path = tmp_path / "fig.json"
    figure_to_json(_figure(), path)
    payload = json.loads(path.read_text())
    assert payload["title"] == "Demo"


def test_results_to_dict(tiny_params):
    from repro.control.no_control import NoControlController
    from repro.experiments.runner import run_simulation
    r = run_simulation(tiny_params, NoControlController())
    d = results_to_dict(r)
    assert d["controller"] == "NoControl"
    assert d["page_throughput"] > 0
    assert "default" in d["per_class"]
    assert d["response_time"] == r.response_time.mean
    assert d["response_time_ci"] == r.response_time.half_width
    json.dumps(d)   # fully serializable


def test_cli_export_flags(tmp_path, capsys):
    from repro.experiments.cli import main
    csv_path = tmp_path / "f.csv"
    json_path = tmp_path / "f.json"
    code = main(["run", "fig20", "--scale", "smoke",
                 "--csv", str(csv_path), "--json", str(json_path)])
    assert code == 0
    assert csv_path.exists() and json_path.exists()
    loaded = figure_from_json(json_path)
    assert loaded.figure_id == "fig20"
