"""Span timelines and latency analytics: correctness, invariance."""

from __future__ import annotations

import json

import pytest

from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.parallel import RunSpec, run_specs, spec_key
from repro.experiments.runner import run_simulation
from repro.telemetry import (LatencyAnalytics, LatencyHistogram,
                             SpanKind, SpanRecorder, TelemetryConfig,
                             TelemetrySession, validate_run_dir)


# ----------------------------------------------------------------------
# LatencyHistogram unit behaviour
# ----------------------------------------------------------------------

def test_histogram_empty_is_all_zero():
    h = LatencyHistogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.quantile(0.99) == 0.0
    assert h.summary()["p50"] == 0.0


def test_histogram_nearest_rank_quantiles_are_exact():
    h = LatencyHistogram()
    for v in [5.0, 1.0, 3.0, 2.0, 4.0]:   # unsorted on purpose
        h.add(v)
    # Nearest-rank over n=5: ceil(q*5) gives ranks 3, 5, 5, 5.
    assert h.quantile(0.50) == 3.0
    assert h.quantile(0.90) == 5.0
    assert h.quantile(0.99) == 5.0
    assert h.min == 1.0 and h.max == 5.0
    assert h.mean == pytest.approx(3.0)
    # Insert after a sort: the cached order must invalidate.
    h.add(0.5)
    assert h.quantile(0.50) == 2.0      # n=6: rank ceil(3.0)=3 → 2.0
    assert h.min == 0.5


def test_histogram_single_value():
    h = LatencyHistogram()
    h.add(7.0)
    for q in (0.01, 0.5, 1.0):
        assert h.quantile(q) == 7.0


# ----------------------------------------------------------------------
# LatencyAnalytics unit behaviour
# ----------------------------------------------------------------------

def test_analytics_phase_fractions_sum_to_one():
    a = LatencyAnalytics()
    a.on_commit(life=10.0, lock_wait=4.0, cpu=2.0, disk=1.0,
                ready_wait=1.0, restart_gap=0.0, restarts=0)
    fractions = a.phase_fractions()
    assert fractions["lock_wait"] == pytest.approx(0.4)
    assert fractions["other"] == pytest.approx(0.2)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_analytics_blame_ranking():
    a = LatencyAnalytics()
    a.on_block(blocker=1, page=10, depth=1)
    a.on_block(blocker=2, page=10, depth=3)
    a.on_block(blocker=2, page=20, depth=2)
    a.credit_wait(blocker=1, page=10, seconds=5.0)
    a.credit_wait(blocker=2, page=10, seconds=1.0)
    a.credit_wait(blocker=2, page=20, seconds=1.0)
    assert a.top_blockers()[0] == (1, 1, 5.0)      # most induced wait
    assert a.hottest_pages()[0][0] == 10
    assert a.mean_chain_depth == pytest.approx(2.0)
    assert a.max_depth == 3
    payload = a.to_dict()
    assert payload["blame"]["block_events"] == 3
    json.dumps(payload)


def test_analytics_empty_to_dict_is_serializable():
    payload = LatencyAnalytics().to_dict()
    assert payload["committed"] == 0
    assert payload["phase_fractions"]["lock_wait"] == 0.0
    json.dumps(payload)


# ----------------------------------------------------------------------
# End-to-end span recording
# ----------------------------------------------------------------------

def _contended(params):
    """A tiny but lock-contended workload (blocks and restarts occur)."""
    return params.replace(db_size=50, write_prob=0.5)


def _run_with_spans(params, out_dir, **kwargs):
    session = TelemetrySession(out_dir, spans=True, **kwargs)
    results = run_simulation(params, HalfAndHalfController(),
                             telemetry=session)
    return session, results


def test_spans_export_and_schema(tiny_params, tmp_path):
    run_dir = tmp_path / "run"
    session, _ = _run_with_spans(_contended(tiny_params), run_dir)
    assert (run_dir / "spans.jsonl").is_file()
    assert (run_dir / "latency.json").is_file()
    assert validate_run_dir(run_dir) == []
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["records"]["spans"] == len(session.spans)
    assert manifest["records"]["spans"] > 0


def test_span_timelines_are_well_formed(tiny_params, tmp_path):
    session, _ = _run_with_spans(_contended(tiny_params), tmp_path / "run")
    spans = list(session.spans)
    assert spans
    kinds_seen = {s.kind for s in spans}
    assert SpanKind.CPU in kinds_seen
    assert SpanKind.DISK in kinds_seen
    assert SpanKind.LOCK_WAIT in kinds_seen
    by_txn = {}
    for s in spans:
        assert s.end >= s.start
        assert s.attempt >= 1
        by_txn.setdefault(s.txn_id, []).append(s)
    for txn_spans in by_txn.values():
        # One open span at a time: a transaction's spans never overlap
        # (export order is close order, which is start order per txn).
        for prev, cur in zip(txn_spans, txn_spans[1:]):
            assert cur.start >= prev.end - 1e-9


def test_lock_wait_spans_carry_attribution(tiny_params, tmp_path):
    session, _ = _run_with_spans(_contended(tiny_params), tmp_path / "run")
    waits = [s for s in session.spans if s.kind is SpanKind.LOCK_WAIT]
    assert waits
    for s in waits:
        assert s.page is not None
        assert s.depth is not None and s.depth >= 1
        assert s.blocker is not None and s.blocker != s.txn_id
    # Non-wait spans carry no attribution fields.
    for s in session.spans:
        if s.kind is not SpanKind.LOCK_WAIT:
            assert s.page is None and s.blocker is None and s.depth is None


def test_restart_gap_spans_follow_aborts(tiny_params, tmp_path):
    session, results = _run_with_spans(_contended(tiny_params),
                                       tmp_path / "run")
    gaps = [s for s in session.spans if s.kind is SpanKind.RESTART_GAP]
    if results.aborts == 0:
        pytest.skip("workload produced no aborts")
    assert gaps
    for s in gaps:
        assert s.duration >= 0.0


def test_spans_are_trajectory_invariant(tiny_params, tmp_path):
    """Spans on vs off: identical results and identical probe stream."""
    params = _contended(tiny_params)
    off = TelemetrySession(tmp_path / "off")
    r_off = run_simulation(params, HalfAndHalfController(), telemetry=off)
    on = TelemetrySession(tmp_path / "on", spans=True)
    r_on = run_simulation(params, HalfAndHalfController(), telemetry=on)
    assert r_off == r_on
    assert (tmp_path / "off" / "probes.jsonl").read_bytes() == \
        (tmp_path / "on" / "probes.jsonl").read_bytes()
    assert (tmp_path / "off" / "trace.jsonl").read_bytes() == \
        (tmp_path / "on" / "trace.jsonl").read_bytes()


def test_spans_deterministic_across_runs(tiny_params, tmp_path):
    params = _contended(tiny_params)
    _run_with_spans(params, tmp_path / "a")
    _run_with_spans(params, tmp_path / "b")
    for name in ("spans.jsonl", "latency.json"):
        assert (tmp_path / "a" / name).read_bytes() == \
            (tmp_path / "b" / name).read_bytes(), name


def test_span_capacity_bounds_export_not_analytics(tiny_params, tmp_path):
    params = _contended(tiny_params)
    full, _ = _run_with_spans(params, tmp_path / "full")
    capped, _ = _run_with_spans(params, tmp_path / "capped",
                                span_capacity=10)
    total = len(full.spans)
    assert total > 10
    assert len(capped.spans) == 10
    assert capped.spans.dropped == total - 10
    # The analytics see every span regardless of the retention bound.
    assert capped.spans.analytics.to_dict() == \
        full.spans.analytics.to_dict()
    manifest = json.loads(
        (tmp_path / "capped" / "manifest.json").read_text())
    assert manifest["records"]["spans_dropped"] == total - 10


def test_latency_json_accounts_for_commits(tiny_params, tmp_path):
    session, results = _run_with_spans(_contended(tiny_params),
                                       tmp_path / "run")
    latency = json.loads((tmp_path / "run" / "latency.json").read_text())
    # The analytics see the whole run (warmup included), so the commit
    # count matches the per-class totals, not the measurement window.
    total_commits = sum(cls.commits for cls in results.per_class.values())
    assert latency["committed"] == total_commits
    assert latency["response"]["count"] == total_commits
    assert total_commits >= results.commits
    assert latency["response"]["mean"] > 0.0
    fractions = latency["phase_fractions"]
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_run_specs_spans_serial_pool_identical(tiny_params, tmp_path):
    params = _contended(tiny_params)
    specs = [RunSpec(params=params,
                     controller_factory=HalfAndHalfController)]
    config_a = TelemetryConfig(root=str(tmp_path / "serial"), spans=True)
    config_b = TelemetryConfig(root=str(tmp_path / "pool"), spans=True)
    serial = run_specs(specs, jobs=1, telemetry=config_a)
    pooled = run_specs(specs, jobs=2, telemetry=config_b)
    assert serial == pooled
    key = spec_key(specs[0])
    for name in ("spans.jsonl", "latency.json", "probes.jsonl"):
        assert (tmp_path / "serial" / key / name).read_bytes() == \
            (tmp_path / "pool" / key / name).read_bytes(), name


def test_recorder_tolerates_unmatched_closes(tiny_params):
    """_close_span with nothing open is a no-op, not an error."""

    class FakeTxn:
        txn_id = 1
        restarts = 0
        timestamp = 0.0

    class FakeSim:
        now = 1.0

    class FakeSystem:
        sim = FakeSim()

    recorder = SpanRecorder()
    recorder._system = FakeSystem()
    recorder.end_service(FakeTxn())     # nothing open
    recorder.on_unblock(FakeTxn())
    assert len(recorder) == 0
