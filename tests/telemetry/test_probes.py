"""Probe scheduler: sampling cadence, determinism, and neutrality."""

from __future__ import annotations

import pytest

from repro.core.half_and_half import HalfAndHalfController
from repro.control.no_control import NoControlController
from repro.dbms.system import DBMSSystem
from repro.errors import ConfigurationError
from repro.experiments.runner import run_simulation
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry.probes import ProbeScheduler


def _build_system(params, controller=None):
    sim = Simulator()
    streams = RandomStreams(params.seed)
    return DBMSSystem(params=params,
                      controller=controller or NoControlController(),
                      sim=sim, streams=streams)


def test_interval_must_be_positive(tiny_params):
    system = _build_system(tiny_params)
    with pytest.raises(ConfigurationError):
        ProbeScheduler(system, interval=0.0)
    with pytest.raises(ConfigurationError):
        ProbeScheduler(system, interval=-1.0)


def test_samples_land_on_the_interval_grid(tiny_params):
    system = _build_system(tiny_params)
    probes = ProbeScheduler(system, interval=2.5)
    probes.start()
    system.start()
    system.sim.run(until=10.0)
    times = [s.time for s in probes.samples]
    assert times == [2.5, 5.0, 7.5, 10.0]


def test_start_is_idempotent(tiny_params):
    system = _build_system(tiny_params)
    probes = ProbeScheduler(system, interval=1.0)
    probes.start()
    probes.start()
    system.start()
    system.sim.run(until=3.0)
    assert [s.time for s in probes.samples] == [1.0, 2.0, 3.0]


def test_samples_are_internally_consistent(tiny_params):
    system = _build_system(tiny_params)
    probes = ProbeScheduler(system, interval=1.0)
    probes.start()
    system.start()
    system.sim.run(until=15.0)
    assert probes.samples
    for s in probes.samples:
        assert s.n_active == s.n_state1 + s.n_state2 + s.n_state3 + s.n_state4
        assert 0.0 <= s.cpu_util <= 1.0
        assert 0.0 <= s.disk_util <= 1.0
        assert 0.0 <= s.blocked_frac <= 1.0
        assert s.conflict_ratio is None or s.conflict_ratio >= 1.0
        assert s.cum_aborts == sum(s.cum_aborts_by_reason.values())


def test_identical_runs_sample_identically(tiny_params):
    def collect():
        system = _build_system(tiny_params, HalfAndHalfController())
        probes = ProbeScheduler(system, interval=1.0)
        probes.start()
        system.start()
        system.sim.run(until=20.0)
        return probes.samples

    assert collect() == collect()


def test_probes_do_not_perturb_the_simulation(tiny_params):
    """A probed run must return byte-for-byte the same results."""
    plain = run_simulation(tiny_params, HalfAndHalfController())

    from repro.telemetry.export import TelemetrySession
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        session = TelemetrySession(tmp, probe_interval=0.5)
        probed = run_simulation(tiny_params, HalfAndHalfController(),
                                telemetry=session)
    assert plain == probed


def test_to_dict_sorts_abort_reasons(tiny_params):
    system = _build_system(tiny_params)
    sample = ProbeScheduler(system, interval=1.0).sample()
    row = sample.to_dict()
    assert list(row["cum_aborts_by_reason"]) == sorted(
        row["cum_aborts_by_reason"])
