"""Benchmark: Figure 17 — the MPLs behind Figure 16."""

from repro.experiments.figures.fig17_tay_mpl import FIGURE


def test_fig17(run_figure):
    result = run_figure(FIGURE)
    hh_mpl = result.get("Half-and-Half (avg MPL)")
    tay_mpl = result.get("Tay's rule MPL")
    optimal = result.get("Optimal MPL")

    # The paper's headline numbers at size 72: optimal ~3, Tay = 1,
    # Half-and-Half ~5 (overshooting).
    assert tay_mpl[-1] == 1
    assert optimal[-1] >= tay_mpl[-1]
    assert hh_mpl[-1] > tay_mpl[-1]

    # Tay's MPL falls monotonically with transaction size.
    assert tay_mpl == sorted(tay_mpl, reverse=True)

    # At the small end both Tay and H&H are liberal (>= optimal-ish).
    assert tay_mpl[0] >= optimal[0] * 0.8
