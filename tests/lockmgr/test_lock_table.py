"""Unit tests for the lock table: grants, queues, upgrades, releases."""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation, LockProtocolError
from repro.lockmgr.lock_table import LockTable, RequestOutcome
from repro.lockmgr.modes import LockMode


class T:
    """Minimal hashable transaction token."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


@pytest.fixture
def table():
    return LockTable()


@pytest.fixture
def txns():
    return T("t1"), T("t2"), T("t3")


def test_fresh_shared_lock_granted(table, txns):
    t1, _, _ = txns
    assert table.request(t1, 1, LockMode.S) is RequestOutcome.GRANTED
    assert table.holds(t1, 1, LockMode.S)
    table.check_invariants()


def test_two_readers_share_a_page(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    assert table.request(t2, 1, LockMode.S) is RequestOutcome.GRANTED
    assert table.holds(t1, 1) and table.holds(t2, 1)


def test_exclusive_blocks_reader(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.X)
    assert table.request(t2, 1, LockMode.S) is RequestOutcome.BLOCKED
    assert table.waiting_on(t2) == 1
    assert not table.holds(t2, 1)
    table.check_invariants()


def test_reader_blocks_writer(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    assert table.request(t2, 1, LockMode.X) is RequestOutcome.BLOCKED


def test_fcfs_no_overtaking_past_queued_writer(table, txns):
    """A new S request must queue behind an X waiter (no starvation)."""
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.X)          # waits
    assert table.request(t3, 1, LockMode.S) is RequestOutcome.BLOCKED
    table.check_invariants()


def test_release_grants_head_waiter(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    grants = table.release_all(t1)
    assert [(g.txn, g.page, g.mode) for g in grants] == \
        [(t2, 1, LockMode.S)]
    assert table.holds(t2, 1, LockMode.S)
    assert not table.is_waiting(t2)


def test_release_grants_compatible_group_together(table, txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    table.request(t3, 1, LockMode.S)
    grants = table.release_all(t1)
    assert {g.txn for g in grants} == {t2, t3}   # both readers granted
    table.check_invariants()


def test_release_stops_at_incompatible_waiter(table, txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    table.request(t3, 1, LockMode.X)
    grants = table.release_all(t1)
    assert [g.txn for g in grants] == [t2]
    assert table.is_waiting(t3)


def test_rerequest_held_lock_is_noop_grant(table, txns):
    t1, _, _ = txns
    table.request(t1, 1, LockMode.S)
    assert table.request(t1, 1, LockMode.S) is RequestOutcome.GRANTED
    table.request(t1, 2, LockMode.X)
    # S after X is covered by the X lock.
    assert table.request(t1, 2, LockMode.S) is RequestOutcome.GRANTED
    assert table.holds(t1, 2, LockMode.X)


def test_upgrade_granted_when_sole_holder(table, txns):
    t1, _, _ = txns
    table.request(t1, 1, LockMode.S)
    assert table.request(t1, 1, LockMode.X) is RequestOutcome.GRANTED
    assert table.holds(t1, 1, LockMode.X)


def test_upgrade_blocks_behind_other_reader(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.S)
    assert table.request(t1, 1, LockMode.X) is RequestOutcome.BLOCKED
    table.check_invariants()
    grants = table.release_all(t2)
    assert [(g.txn, g.mode, g.was_upgrade) for g in grants] == \
        [(t1, LockMode.X, True)]
    assert table.holds(t1, 1, LockMode.X)


def test_waiting_upgrader_suppresses_new_grants(table, txns):
    """Readers must not be granted past a waiting upgrader."""
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.S)
    table.request(t1, 1, LockMode.X)                     # upgrader waits
    assert table.request(t3, 1, LockMode.S) is RequestOutcome.BLOCKED
    # t2 releases: the upgrade is granted, not the new reader.
    grants = table.release_all(t2)
    assert [g.txn for g in grants] == [t1]
    assert table.holds(t1, 1, LockMode.X)
    assert table.is_waiting(t3)
    # When the upgraded writer finishes, the reader gets in.
    grants = table.release_all(t1)
    assert [g.txn for g in grants] == [t3]


def test_release_single_page(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t1, 2, LockMode.S)
    table.request(t2, 1, LockMode.X)
    grants = table.release(t1, 1)
    assert [g.txn for g in grants] == [t2]
    assert table.holds(t1, 2)
    assert not table.holds(t1, 1)


def test_release_unheld_page_raises(table, txns):
    t1, _, _ = txns
    with pytest.raises(LockProtocolError):
        table.release(t1, 99)


def test_request_while_waiting_raises(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    with pytest.raises(LockProtocolError):
        table.request(t2, 2, LockMode.S)


def test_cancel_wait_removes_request(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    grants = table.cancel_wait(t2)
    assert grants == []
    assert not table.is_waiting(t2)
    table.check_invariants()


def test_cancel_wait_in_middle_unblocks_later_compatible(table, txns):
    """Removing an X waiter lets a queued S join the current S holders."""
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.X)
    table.request(t3, 1, LockMode.S)
    grants = table.cancel_wait(t2)
    assert [g.txn for g in grants] == [t3]
    assert table.holds(t3, 1, LockMode.S)


def test_cancel_wait_noop_for_non_waiter(table, txns):
    t1, _, _ = txns
    assert table.cancel_wait(t1) == []


def test_release_all_cancels_pending_wait(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    table.request(t1, 2, LockMode.S)   # t1 holds two locks... second page
    table.release_all(t2)              # t2 was only waiting
    assert not table.is_waiting(t2)
    assert table.holds(t1, 1) and table.holds(t1, 2)


def test_held_pages_tracking(table, txns):
    t1, _, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t1, 5, LockMode.X)
    assert table.held_pages(t1) == {1, 5}
    table.release_all(t1)
    assert table.held_pages(t1) == set()


def test_is_blocking_others(table, txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.X)
    assert not table.is_blocking_others(t1)
    table.request(t2, 1, LockMode.S)
    assert table.is_blocking_others(t1)
    assert not table.is_blocking_others(t2)
    # An upgrader waiting on a page held by t3 too.
    table.request(t3, 2, LockMode.S)
    assert not table.is_blocking_others(t3)


def test_blocking_set_for_ordinary_waiter(table, txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.X)      # blocked by holder t1
    table.request(t3, 1, LockMode.X)      # blocked by t1 and t2
    assert table.blocking_set(t2) == {t1}
    assert table.blocking_set(t3) == {t1, t2}
    assert table.blocking_set(t1) == set()   # not waiting


def test_blocking_set_for_upgrader(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.S)
    table.request(t1, 1, LockMode.X)
    assert table.blocking_set(t1) == {t2}


def test_blocking_set_shared_waiter_not_blocked_by_shared_ahead(table,
                                                                txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.X)
    table.request(t2, 1, LockMode.S)
    table.request(t3, 1, LockMode.S)
    # t3 is blocked by the X holder but NOT by the compatible S ahead.
    assert table.blocking_set(t3) == {t1}


def test_statistics_counters(table, txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.S)
    table.request(t3, 1, LockMode.S)
    table.request(t2, 1, LockMode.X)       # blocks behind both readers
    table.request(t1, 1, LockMode.X)       # upgrade blocks behind t3's S
    assert table.requests == 4
    assert table.blocks == 2
    assert table.upgrades_requested == 1


def test_upgrade_by_sole_holder_granted_past_waiters(table, txns):
    """An upgrade by the only holder conflicts with nobody and is
    granted immediately, even with an X request queued behind it."""
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.X)
    assert table.request(t1, 1, LockMode.X) is RequestOutcome.GRANTED
    assert table.holds(t1, 1, LockMode.X)
    assert table.is_waiting(t2)


def test_waiter_modes_order(table, txns):
    t1, t2, t3 = txns
    table.request(t1, 1, LockMode.S)
    table.request(t3, 1, LockMode.S)
    table.request(t2, 1, LockMode.X)       # ordinary X waiter
    table.request(t1, 1, LockMode.X)       # upgrader (listed first)
    assert table.waiter_modes(1) == [LockMode.X, LockMode.X]
    assert table.num_waiters(1) == 2
    assert table.num_waiters(999) == 0


def test_lock_entry_garbage_collected(table, txns):
    t1, _, _ = txns
    table.request(t1, 1, LockMode.S)
    table.release_all(t1)
    assert table.holders(1) == {}
    assert table._locks == {}  # internal: entry truly removed


# ----------------------------------------------------------------------
# O(1) holder-mode counters
# ----------------------------------------------------------------------

def test_holder_counters_track_grants_and_releases(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.S)
    lock = table._locks[1]
    assert (lock.num_s, lock.num_x) == (2, 0)
    table.release_all(t2)
    assert (lock.num_s, lock.num_x) == (1, 0)
    table.check_invariants()


def test_holder_counters_track_upgrades(table, txns):
    t1, t2, _ = txns
    table.request(t1, 1, LockMode.S)
    table.request(t2, 1, LockMode.S)
    table.request(t1, 1, LockMode.X)           # waits behind t2
    lock = table._locks[1]
    assert (lock.num_s, lock.num_x) == (2, 0)
    table.release_all(t2)                      # upgrade granted
    assert (lock.num_s, lock.num_x) == (0, 1)
    assert table.holds(t1, 1, LockMode.X)
    table.check_invariants()


def test_invariant_checker_catches_desynced_counters(table, txns):
    t1, _, _ = txns
    table.request(t1, 1, LockMode.S)
    table._locks[1].num_s += 1                 # corrupt the counter
    with pytest.raises(InvariantViolation, match="holder-mode counters"):
        table.check_invariants()
