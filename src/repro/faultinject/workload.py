"""Workload-level disturbances: surges and contention spikes.

The paper's time-varying experiments (Figs. 14–15) drift the workload
smoothly; real systems also see *abrupt* disturbances — a batch job
lands, a hot key emerges.  :class:`FaultyWorkload` wraps any base
generator and, inside configured simulated-time windows, disturbs what
it produces:

* ``size_factor`` scales the mean transaction size — in the paper's
  closed model (zero think time) a demand surge and an arrival surge
  are the same thing: more offered page work per unit time;
* ``hotspot_fraction`` concentrates page accesses on a prefix of the
  database — a contention spike that multiplies conflicts without
  changing the offered processing work.

Outside every window the wrapper delegates to the base generator
untouched.  Windows are fixed simulated times and all sampling uses
the run's named random streams, so disturbed runs stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dbms.config import SimulationParameters
from repro.dbms.transaction import Transaction
from repro.errors import ExperimentError
from repro.sim.rng import RandomStreams
from repro.workload.base import WorkloadGenerator
from repro.workload.homogeneous import HomogeneousWorkload

__all__ = ["WorkloadDisturbance", "FaultyWorkload",
           "FaultyWorkloadFactory"]


@dataclass(frozen=True)
class WorkloadDisturbance:
    """One disturbance window over [start, start+duration)."""

    start: float
    duration: float
    size_factor: float = 1.0
    hotspot_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ExperimentError(
                f"disturbance start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ExperimentError(
                f"disturbance duration must be > 0, got {self.duration}")
        if self.size_factor <= 0.0:
            raise ExperimentError(
                f"size_factor must be > 0, got {self.size_factor}")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ExperimentError(
                f"hotspot_fraction must be in (0, 1], "
                f"got {self.hotspot_fraction}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end

    def __str__(self) -> str:
        parts = []
        if self.size_factor != 1.0:
            parts.append(f"size×{self.size_factor:g}")
        if self.hotspot_fraction != 1.0:
            parts.append(f"hotspot {self.hotspot_fraction:.0%}")
        what = "+".join(parts) or "no-op"
        return f"{what} @[{self.start:g},{self.end:g})"


class FaultyWorkload(WorkloadGenerator):
    """Wrap a base generator; disturb it inside configured windows."""

    def __init__(self, streams: RandomStreams, base: WorkloadGenerator,
                 params: SimulationParameters,
                 disturbances: Tuple[WorkloadDisturbance, ...]):
        super().__init__(streams)
        self.base = base
        self.params = params
        self.disturbances = tuple(disturbances)
        self.disturbed_transactions = 0

    @property
    def name(self) -> str:
        windows = "; ".join(str(d) for d in self.disturbances)
        return f"Faulty({self.base.name}; {windows})"

    def active_disturbance(self, now: float
                           ) -> Optional[WorkloadDisturbance]:
        """The disturbance window covering ``now``, if any."""
        for disturbance in self.disturbances:
            if disturbance.covers(now):
                return disturbance
        return None

    def make_transaction(self, txn_id: int, terminal_id: int,
                         now: float) -> Transaction:
        disturbance = self.active_disturbance(now)
        if disturbance is None:
            return self.base.make_transaction(txn_id, terminal_id, now)
        self.disturbed_transactions += 1
        p = self.params
        mean_size = max(1, round(p.tran_size * disturbance.size_factor))
        # A hotspot is a database prefix: sampling from fewer pages
        # with the same per-page demand multiplies conflicts.
        db_size = max(mean_size + mean_size // 2,
                      round(p.db_size * disturbance.hotspot_fraction))
        return self._build(txn_id, terminal_id, now,
                           db_size=min(db_size, p.db_size),
                           mean_size=mean_size,
                           write_prob=p.write_prob,
                           class_name="disturbed")


@dataclass(frozen=True)
class FaultyWorkloadFactory:
    """Picklable factory: base homogeneous workload + disturbances.

    Suitable as a :class:`~repro.experiments.parallel.RunSpec`
    ``workload_factory`` — frozen dataclass, so it pickles across the
    process pool and hashes into the result-cache key.
    """

    disturbances: Tuple[WorkloadDisturbance, ...] = ()

    def __call__(self, streams: RandomStreams,
                 params: SimulationParameters) -> WorkloadGenerator:
        base = HomogeneousWorkload(streams, params)
        if not self.disturbances:
            return base
        return FaultyWorkload(streams, base, params, self.disturbances)
