"""Unit tests for the analytic throughput model and MPC controller."""

from __future__ import annotations

import pytest

from repro.control.analytic import (
    AnalyticMPCController,
    conflict_coefficient,
    optimal_mpl,
    predict_throughput,
)
from repro.dbms.config import SimulationParameters
from repro.errors import ConfigurationError
from repro.experiments.runner import run_simulation
from repro.telemetry import DecisionLog
from repro.verify import VerifyConfig


# ----------------------------------------------------------------------
# The pure model
# ----------------------------------------------------------------------

def test_conflict_coefficient_base_case():
    # D_e = 1000/0.4375, r = 10: coeff = 10*8 / (4 * 2285.7)
    assert conflict_coefficient(8, 1000, 0.25) == pytest.approx(
        80.0 / (4.0 * 1000.0 / 0.4375))


def test_conflict_coefficient_read_only_is_zero():
    # No writes -> S locks never conflict; unlike Tay's rule this is a
    # well-defined point of the model (no contention), not an error.
    assert conflict_coefficient(8, 1000, 0.0) == 0.0


def test_conflict_coefficient_validation():
    with pytest.raises(ConfigurationError):
        conflict_coefficient(0, 1000, 0.25)
    with pytest.raises(ConfigurationError):
        conflict_coefficient(8, 0, 0.25)
    with pytest.raises(ConfigurationError):
        conflict_coefficient(8, 1000, 1.5)


def test_predict_validation():
    with pytest.raises(ConfigurationError):
        predict_throughput(0, 8, 1000, 0.25)
    with pytest.raises(ConfigurationError):
        predict_throughput(10, 8, 1000, 0.25, efficiency=0.0)
    with pytest.raises(ConfigurationError):
        predict_throughput(10, 8, 1000, 0.25, efficiency=1.5)
    with pytest.raises(ConfigurationError):
        predict_throughput(10, 8, 1000, 0.25, conflict_coeff=-0.1)
    with pytest.raises(ConfigurationError):
        predict_throughput(10, 8, 1000, 0.25, page_io=-1.0)
    with pytest.raises(ConfigurationError):
        predict_throughput(10, 8, 1000, 0.25, page_cpu=0.0, page_io=0.0)


def test_read_only_workload_hits_resource_bound():
    # w = 0: no contention at any MPL; throughput saturates at the
    # disk bound and never declines.
    rates = [predict_throughput(m, 8, 1000, 0.0) for m in (1, 10, 100)]
    assert rates == sorted(rates)
    # disk bound: num_disks / (k * page_io) transactions/s * k pages
    assert rates[-1] == pytest.approx(5.0 / 0.035)


def test_curve_is_unimodal_under_contention():
    rates = [predict_throughput(m, 8, 300, 0.5) for m in range(1, 201)]
    peak = rates.index(max(rates))
    assert all(a <= b + 1e-12
               for a, b in zip(rates[:peak], rates[1:peak + 1]))
    assert all(a >= b - 1e-12
               for a, b in zip(rates[peak:], rates[peak + 1:]))


def test_high_contention_optimum_is_interior():
    # Small hot database: the model must pick a modest MPL, not
    # max_mpl (the earlier linear-cap artifact admitted 115 here).
    best = optimal_mpl(200, 8, 300, 0.5)
    assert 2 <= best <= 20


def test_low_contention_optimum_at_resource_knee():
    # Base case: the disk saturates around MPL 6; admitting more buys
    # nothing, so the argmax (ties go low) sits at the knee.
    best = optimal_mpl(200, 8, 1000, 0.25)
    assert 3 <= best <= 15


def test_efficiency_scales_prediction():
    full = predict_throughput(10, 8, 1000, 0.25)
    half = predict_throughput(10, 8, 1000, 0.25, efficiency=0.5)
    assert half == pytest.approx(full * 0.5)


def test_optimal_mpl_validation():
    with pytest.raises(ConfigurationError):
        optimal_mpl(0, 8, 1000, 0.25)


# ----------------------------------------------------------------------
# The MPC controller
# ----------------------------------------------------------------------

@pytest.fixture
def hot_params():
    return SimulationParameters(num_terms=40, db_size=150, write_prob=0.5,
                                warmup_time=2.0, num_batches=2,
                                batch_time=5.0)


def test_controller_validation():
    with pytest.raises(ConfigurationError):
        AnalyticMPCController(epoch_commits=0)
    with pytest.raises(ConfigurationError):
        AnalyticMPCController(smoothing=0.0)
    with pytest.raises(ConfigurationError):
        AnalyticMPCController(smoothing=1.5)


def test_from_params_solves_prior():
    params = SimulationParameters(num_terms=200)
    controller = AnalyticMPCController.from_params(params)
    assert controller.mpl == optimal_mpl(
        200, params.tran_size, params.db_size, params.write_prob,
        num_cpus=params.num_cpus, num_disks=params.num_disks,
        page_cpu=params.page_cpu, page_io=params.page_io)


def test_controller_refits_online(hot_params):
    controller = AnalyticMPCController(epoch_commits=20)
    results = run_simulation(hot_params, controller)
    assert controller.refits > 0
    assert results.commits > 0
    # The refit coefficient stays a usable model input.
    assert controller.conflict_coeff >= 0.0
    assert 0.0 < controller.efficiency <= 1.0


def test_refits_logged(hot_params):
    controller = AnalyticMPCController(epoch_commits=20)
    controller.decision_log = DecisionLog()
    run_simulation(hot_params, controller)
    refit_rows = [d for d in controller.decision_log
                  if d.action == "refit"]
    assert len(refit_rows) == controller.refits
    assert all("coeff=" in row.detail for row in refit_rows)


def test_controller_is_deterministic(hot_params):
    first = run_simulation(hot_params, AnalyticMPCController())
    second = run_simulation(hot_params, AnalyticMPCController())
    assert first == second


def test_controller_survives_full_verification(hot_params):
    results = run_simulation(hot_params, AnalyticMPCController(),
                             verify=VerifyConfig(cadence="every"))
    assert results.commits > 0
