"""Deadlock handling strategies: detection vs timestamp prevention.

The paper's system uses deadlock *detection* at block time with
youngest-victim aborts.  The classic alternatives from the literature it
builds on ([Gray79]; compared in the [Agra87a] family of studies) are
timestamp-ordered *prevention* schemes, which never let a cycle form:

* **Wait-die** — an older requester may wait for a younger holder; a
  younger requester *dies* (aborts) immediately.  Waits only ever point
  from older to younger transactions, so the waits-for graph is acyclic.
* **Wound-wait** — an older requester *wounds* (aborts) younger holders
  and takes their place in line; a younger requester waits.  Waits only
  ever point from younger to older.

Both rely on the same anti-starvation trick the paper uses for its
victims: aborted transactions keep their original timestamps, so every
transaction eventually becomes the oldest and cannot be killed again.

Implementation note: wounding a *blocked* transaction is immediate; a
*running* transaction (holding a CPU/disk or with a continuation event
in flight) cannot be torn down mid-service, so it is marked wounded and
aborts at its next scheduling checkpoint.  A transaction already in its
deferred-update phase is spared — it holds all its locks, is about to
commit, and aborting it would only waste finished work.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List

from repro.lockmgr.lock_table import LockTable

__all__ = ["DeadlockStrategy", "wait_die_should_die",
           "wound_wait_victims"]

Txn = Any
AgeKey = Callable[[Txn], Any]   # smaller = older


class DeadlockStrategy(enum.Enum):
    """How lock-wait cycles are handled."""

    DETECTION = "detection"     # the paper: detect at block time
    WAIT_DIE = "wait_die"
    WOUND_WAIT = "wound_wait"


def wait_die_should_die(lock_table: LockTable, txn: Txn,
                        age: AgeKey) -> bool:
    """Wait-die: the requester dies unless older than every blocker."""
    my_age = age(txn)
    return any(age(blocker) < my_age
               for blocker in lock_table.blocking_order(txn))


def wound_wait_victims(lock_table: LockTable, txn: Txn,
                       age: AgeKey) -> List[Txn]:
    """Wound-wait: the younger blockers the requester wounds.

    The requester then keeps waiting for any remaining (older)
    blockers; with none left, the grant cascade from the victims'
    releases will admit it.
    """
    my_age = age(txn)
    return [blocker for blocker in lock_table.blocking_order(txn)
            if age(blocker) > my_age]
