"""JSON schemas for the telemetry files, and a dependency-free validator.

Each run directory holds four deterministic artifacts:

* ``manifest.json``   — provenance: seed, parameters, spec hash, package
  fingerprint, record counts (:data:`MANIFEST_SCHEMA`);
* ``probes.jsonl``    — one :data:`PROBE_SCHEMA` record per sample;
* ``decisions.jsonl`` — one :data:`DECISION_SCHEMA` record per verdict;
* ``trace.jsonl``     — one :data:`TRACE_SCHEMA` record per transition;

and, when span recording is enabled, two more:

* ``spans.jsonl``     — one :data:`SPAN_SCHEMA` record per closed span;
* ``latency.json``    — the :data:`LATENCY_SCHEMA` analytics summary;

plus the wall-clock ``profile.json``, which is deliberately *not*
byte-deterministic and therefore not schema-pinned beyond being an
object.

The validator implements the subset of JSON Schema the schemas use
(``type`` with unions, ``required``, ``properties``) so CI can check
emitted files without a third-party ``jsonschema`` dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = [
    "PROBE_SCHEMA",
    "DECISION_SCHEMA",
    "TRACE_SCHEMA",
    "SPAN_SCHEMA",
    "LATENCY_SCHEMA",
    "MANIFEST_SCHEMA",
    "validate_record",
    "validate_jsonl",
    "validate_run_dir",
]


PROBE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "time", "n_active", "ready_queue",
        "n_state1", "n_state2", "n_state3", "n_state4",
        "frac_state1", "frac_state3", "blocked_frac",
        "cpu_util", "disk_util", "cpu_scale", "disk_scale",
        "conflict_ratio",
        "locks_held", "locked_pages",
        "cum_lock_requests", "cum_lock_blocks",
        "cum_commits", "cum_aborts", "cum_aborts_by_reason",
    ],
    "properties": {
        "time": {"type": "number"},
        "n_active": {"type": "integer"},
        "ready_queue": {"type": "integer"},
        "n_state1": {"type": "integer"},
        "n_state2": {"type": "integer"},
        "n_state3": {"type": "integer"},
        "n_state4": {"type": "integer"},
        "frac_state1": {"type": "number"},
        "frac_state3": {"type": "number"},
        "blocked_frac": {"type": "number"},
        "cpu_util": {"type": "number"},
        "disk_util": {"type": "number"},
        "cpu_scale": {"type": "number"},
        "disk_scale": {"type": "number"},
        "conflict_ratio": {"type": ["number", "null"]},
        "locks_held": {"type": "integer"},
        "locked_pages": {"type": "integer"},
        "cum_lock_requests": {"type": "integer"},
        "cum_lock_blocks": {"type": "integer"},
        "cum_commits": {"type": "integer"},
        "cum_aborts": {"type": "integer"},
        "cum_aborts_by_reason": {"type": "object"},
    },
}

DECISION_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "time", "controller", "action", "region",
        "n_active", "n_state1", "n_state3",
        "frac_state1", "frac_state3",
        "txn_id", "measure", "threshold", "detail",
    ],
    "properties": {
        "time": {"type": "number"},
        "controller": {"type": "string"},
        "action": {"type": "string"},
        "region": {"type": ["string", "null"]},
        "n_active": {"type": "integer"},
        "n_state1": {"type": "integer"},
        "n_state3": {"type": "integer"},
        "frac_state1": {"type": "number"},
        "frac_state3": {"type": "number"},
        "txn_id": {"type": ["integer", "null"]},
        "measure": {"type": ["number", "null"]},
        "threshold": {"type": ["number", "null"]},
        "detail": {"type": "string"},
    },
}

TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["time", "type", "txn_id", "detail"],
    "properties": {
        "time": {"type": "number"},
        "type": {"type": "string"},
        "txn_id": {"type": "integer"},
        "detail": {"type": "string"},
    },
}

SPAN_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["txn_id", "kind", "start", "end", "attempt",
                 "page", "blocker", "depth"],
    "properties": {
        "txn_id": {"type": "integer"},
        "kind": {"type": "string"},
        "start": {"type": "number"},
        "end": {"type": "number"},
        "attempt": {"type": "integer"},
        # Only lock_wait spans carry a page/blocker/depth; blocker is
        # additionally null when the blocking order is empty at block
        # time (the request raced a release inside one event).
        "page": {"type": ["integer", "null"]},
        "blocker": {"type": ["integer", "null"]},
        "depth": {"type": ["integer", "null"]},
    },
}

LATENCY_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "committed", "restarts_of_committed",
        "response", "lock_wait", "service", "ready_wait",
        "phase_seconds", "phase_fractions", "blame",
    ],
    "properties": {
        "committed": {"type": "integer"},
        "restarts_of_committed": {"type": "integer"},
        "response": {"type": "object"},
        "lock_wait": {"type": "object"},
        "service": {"type": "object"},
        "ready_wait": {"type": "object"},
        "phase_seconds": {"type": "object"},
        "phase_fractions": {"type": "object"},
        "blame": {"type": "object"},
    },
}

MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "seed", "code_fingerprint", "records"],
    "properties": {
        "format": {"type": "string"},
        "seed": {"type": "integer"},
        "params": {"type": "object"},
        "controller": {"type": ["string", "null"]},
        "workload": {"type": ["string", "null"]},
        "sim_time": {"type": ["number", "null"]},
        "probe_interval": {"type": ["number", "null"]},
        "code_fingerprint": {"type": "string"},
        "spec_key": {"type": ["string", "null"]},
        "tag": {"type": ["string", "null"]},
        "cache_hit": {"type": "boolean"},
        "records": {"type": "object"},
    },
}


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
    # bool is an int subclass; a schema saying integer/number means a
    # real number, so booleans are rejected explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
}


def _type_ok(value: Any, expected: Union[str, List[str]]) -> bool:
    names = [expected] if isinstance(expected, str) else expected
    return any(_TYPE_CHECKS[name](value) for name in names)


def validate_record(record: Any, schema: Dict[str, Any],
                    where: str = "record") -> List[str]:
    """Check one decoded record against a schema; returns error strings."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"{where}: expected an object, got {type(record).__name__}"]
    for name in schema.get("required", ()):
        if name not in record:
            errors.append(f"{where}: missing required field {name!r}")
    for name, spec in schema.get("properties", {}).items():
        if name not in record:
            continue
        expected = spec.get("type")
        if expected is not None and not _type_ok(record[name], expected):
            errors.append(
                f"{where}: field {name!r} has type "
                f"{type(record[name]).__name__}, expected {expected}")
    return errors


def validate_jsonl(path: Union[str, Path],
                   schema: Dict[str, Any]) -> List[str]:
    """Validate every line of a JSONL file; returns error strings."""
    path = Path(path)
    errors: List[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"{path.name}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: invalid JSON ({exc})")
            continue
        errors.extend(validate_record(record, schema, where=where))
    return errors


def validate_run_dir(run_dir: Union[str, Path]) -> List[str]:
    """Validate one telemetry run directory; returns error strings.

    The manifest is mandatory.  The JSONL streams are validated when
    present; a cache-hit run records provenance only, so their absence
    is not an error.
    """
    run_dir = Path(run_dir)
    errors: List[str] = []

    manifest_path = run_dir / "manifest.json"
    if not manifest_path.is_file():
        return [f"{run_dir}: missing manifest.json"]
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{manifest_path}: invalid ({exc})"]
    errors.extend(validate_record(manifest, MANIFEST_SCHEMA,
                                  where=manifest_path.name))

    for filename, schema in (("probes.jsonl", PROBE_SCHEMA),
                             ("decisions.jsonl", DECISION_SCHEMA),
                             ("trace.jsonl", TRACE_SCHEMA),
                             ("spans.jsonl", SPAN_SCHEMA)):
        path = run_dir / filename
        if path.is_file():
            errors.extend(validate_jsonl(path, schema))

    latency_path = run_dir / "latency.json"
    if latency_path.is_file():
        try:
            latency = json.loads(latency_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{latency_path}: invalid ({exc})")
        else:
            errors.extend(validate_record(latency, LATENCY_SCHEMA,
                                          where=latency_path.name))
    return errors
