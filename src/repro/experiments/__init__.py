"""Experiment harness: runner, sweeps, figure reproductions, reporting."""

from repro.experiments.runner import run_simulation

__all__ = ["run_simulation"]
