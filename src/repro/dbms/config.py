"""Simulation parameters (the paper's Tables 1 and 2).

:class:`SimulationParameters` bundles the workload, hardware, and
statistics-collection knobs.  Defaults are exactly the paper's Table 2 base
case: a 1000-page database, 8-page transactions (uniform on 4–12 pages),
write probability 0.25, 200 terminals with zero think time, 35 ms page I/O
and 5 ms page CPU on 1 CPU and 5 disks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["SimulationParameters"]


@dataclass
class SimulationParameters:
    """All knobs of the simulation model.

    Workload parameters (paper Table 2):

    Attributes:
        db_size: number of pages in the database.
        tran_size: mean transaction readset size; actual sizes are uniform
            over ``tran_size ± tran_size/2``.
        write_prob: probability that a page read is also written.
        num_terms: number of terminals submitting transactions.
        think_time: mean terminal think time (seconds); the paper uses 0
            throughout to keep the closed system under pressure.
        page_io: disk service time to read or write one page (seconds).
        page_cpu: CPU service time to process one page (seconds).
        num_cpus: CPU servers in the shared pool.
        num_disks: independent disks the database is declustered over.

    Modelling options:

    Attributes:
        buf_size: LRU buffer-pool pages; ``None`` disables buffering (the
            paper's default — every read causes an I/O).
        cc_cpu: explicit CPU cost per concurrency-control request.  The
            paper folds locking cost into ``page_cpu``, so this defaults
            to 0; it is kept as a knob for sensitivity work.
        lock_upgrades: if True (paper footnote 1), written pages are first
            S-locked at read time and upgraded to X afterwards; if False,
            they are X-locked immediately at read time.
        locking_enabled: if False, concurrency control is bypassed
            entirely — no locks, no blocking, no deadlocks.  This is the
            "absence of a concurrency control mechanism" reference curve
            of the paper's Figure 1 (resource contention only).
        estimate_error: multiplier applied to a transaction's true lock
            count to form the *estimated* lock count it reports to the
            load controller (1.0 = perfect estimates).
        restart_delay: pause between a transaction's abort and its
            re-arrival at the ready queue.  The paper sends aborted
            transactions to the back of the ready queue without naming a
            delay; a strictly zero delay lets an abort-restart-abort loop
            spin forever within one simulated instant under policies that
            abort at request time (bounded wait queues), so some pacing is
            implicit in any runnable model.  ``None`` (default) uses one
            page service time (``page_io + page_cpu``).

    Statistics (Section 4.1):

    Attributes:
        seed: master random seed.
        warmup_time: simulated seconds discarded before measurement.
        num_batches: batches for the batch-means method (paper: 20).
        batch_time: simulated seconds per batch.
    """

    # Workload / hardware (Table 2 base case).
    db_size: int = 1000
    tran_size: int = 8
    write_prob: float = 0.25
    num_terms: int = 200
    think_time: float = 0.0
    page_io: float = 0.035
    page_cpu: float = 0.005
    num_cpus: int = 1
    num_disks: int = 5

    # Modelling options.
    buf_size: Optional[int] = None
    cc_cpu: float = 0.0
    lock_upgrades: bool = True
    locking_enabled: bool = True
    estimate_error: float = 1.0
    restart_delay: Optional[float] = None

    # Statistics collection.
    seed: int = 42
    warmup_time: float = 30.0
    num_batches: int = 20
    batch_time: float = 60.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.db_size < 1:
            raise ConfigurationError("db_size must be positive")
        if self.tran_size < 1:
            raise ConfigurationError("tran_size must be positive")
        max_readset = self.tran_size + self.tran_size // 2
        if max_readset > self.db_size:
            raise ConfigurationError(
                f"largest readset ({max_readset} pages) exceeds the "
                f"database size ({self.db_size} pages)")
        if not 0.0 <= self.write_prob <= 1.0:
            raise ConfigurationError("write_prob must be in [0, 1]")
        if self.num_terms < 1:
            raise ConfigurationError("num_terms must be positive")
        if self.think_time < 0.0:
            raise ConfigurationError("think_time must be non-negative")
        if self.page_io < 0.0 or self.page_cpu < 0.0:
            raise ConfigurationError("service times must be non-negative")
        if self.num_cpus < 1 or self.num_disks < 1:
            raise ConfigurationError("need at least one CPU and one disk")
        if self.buf_size is not None and self.buf_size < 1:
            raise ConfigurationError("buf_size must be positive or None")
        if self.cc_cpu < 0.0:
            raise ConfigurationError("cc_cpu must be non-negative")
        if self.estimate_error <= 0.0:
            raise ConfigurationError("estimate_error must be positive")
        if self.restart_delay is not None and self.restart_delay < 0.0:
            raise ConfigurationError("restart_delay must be non-negative")
        if self.warmup_time < 0.0 or self.batch_time <= 0.0:
            raise ConfigurationError("invalid measurement window")
        if self.num_batches < 1:
            raise ConfigurationError("num_batches must be positive")

    def replace(self, **changes) -> "SimulationParameters":
        """Return a copy with the given fields changed (validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def effective_restart_delay(self) -> float:
        """The restart pause in effect: explicit, or one page time."""
        if self.restart_delay is not None:
            return self.restart_delay
        return self.page_io + self.page_cpu

    @property
    def measurement_time(self) -> float:
        """Total measured simulation time after warmup."""
        return self.num_batches * self.batch_time

    @property
    def total_time(self) -> float:
        """Warmup plus measurement time."""
        return self.warmup_time + self.measurement_time
