"""Extension: deadlock detection vs timestamp prevention.

The paper handles deadlocks by detection-at-block-time with
youngest-victim aborts.  This experiment swaps in the classic
prevention schemes (wait-die, wound-wait) on a contended configuration
and compares them with and without Half-and-Half load control —
showing that the thrashing problem, and the benefit of admission
control, are not artifacts of the detection scheme.
"""

from repro.control.no_control import NoControlController
from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import run_simulation
from repro.experiments.studies import base_params
from repro.lockmgr.prevention import DeadlockStrategy


def test_ext_deadlock_strategies(benchmark, scale):
    def run():
        params = base_params(scale, tran_size=16)  # real contention
        out = {}
        for strategy in DeadlockStrategy:
            out[(strategy, "raw")] = run_simulation(
                params, NoControlController(),
                deadlock_strategy=strategy)
            out[(strategy, "hh")] = run_simulation(
                params, HalfAndHalfController(),
                deadlock_strategy=strategy)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for (strategy, control), r in results.items():
        r.controller_name = f"{strategy.value}/{control}"
        rows.append(r)
    print(format_results_table(
        rows, title="Deadlock handling x load control (tran_size=16)"))

    for strategy in DeadlockStrategy:
        raw = results[(strategy, "raw")]
        hh = results[(strategy, "hh")]
        # Prevention schemes really prevent: no detection aborts.
        if strategy is not DeadlockStrategy.DETECTION:
            assert raw.aborts_by_reason.get("deadlock", 0) == 0
        # Load control helps under every deadlock-handling scheme.
        assert hh.page_throughput.mean > 0.95 * raw.page_throughput.mean
