"""Controller decision log: every load-control verdict, with evidence.

The paper's controllers act at a handful of decision points (arrival,
lock grant, block, commit).  A :class:`DecisionLog` plugged into a
controller records one :class:`ControllerDecision` per verdict — the
action taken, the operating region, and the population counts the
controller observed at that instant — so controller behaviour can be
replayed and debugged offline instead of inferred from aggregates.

Like the tracer, the log is optional and off by default; an attached
controller pays one ``None`` check per hook when no log is installed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["DecisionAction", "ControllerDecision", "DecisionLog"]


class DecisionAction:
    """Well-known decision kinds (string constants, not an enum, so
    custom controllers can introduce their own without touching this
    module)."""

    ADMIT = "admit"                    # arrival admitted immediately
    DEFER = "defer"                    # arrival parked in the ready queue
    ADMIT_CARRYOVER = "admit_carryover"  # pre-authorised by a past commit
    ADMIT_QUEUED = "admit_queued"      # admitted from the ready queue
    ABORT_VICTIM = "abort_victim"      # overload victim aborted
    ADMIT_ON_COMMIT = "admit_on_commit"  # replacement admitted at commit
    CARRY_ADMIT = "carry_admit"        # commit found the queue empty;
    #                                    next arrival pre-authorised
    PASSIVATE = "passivate"            # overload victim parked (cold set)
    READMIT = "readmit"                # parked txn readmitted (LIFO)
    SHRINK_CAP = "shrink_cap"          # congestion: population cap
    #                                    halved (AIMD decrease)
    REFIT = "refit"                    # analytic model refit to new
    #                                    conflict/abort observations
    FAULT_BEGIN = "fault_begin"        # injected fault window opened
    FAULT_END = "fault_end"            # injected fault window closed
    # Distributed failure model (system-level events recorded by
    # DistributedSystem, attributed to pseudo-controller "siteN"):
    SITE_CRASH = "site_crash"          # a site went down
    SITE_RECOVER = "site_recover"      # a crashed site came back
    PARTITION_BEGIN = "partition_begin"  # a network partition opened
    PARTITION_END = "partition_end"      # a network partition healed
    INDOUBT_HOLD = "indoubt_hold"      # participant prepared; locks held
    #                                    in-doubt awaiting the decision
    INDOUBT_RESOLVED = "indoubt_resolved"  # in-doubt locks released
    DEGRADED_ENTER = "degraded_enter"  # safe-mode MPL clamp engaged
    DEGRADED_EXIT = "degraded_exit"    # remotes reachable again; clamp off


@dataclass(frozen=True)
class ControllerDecision:
    """One recorded load-control verdict.

    ``measure`` and ``threshold`` carry the controller's decision
    variable and the value it was compared against — for Half-and-Half
    the observed State 1/State 3 fraction vs ``0.5 ± δ``, for the
    conflict-ratio controller the ratio vs its critical value, for a
    fixed-MPL controller the active count vs the MPL limit.
    """

    time: float
    controller: str
    action: str
    region: Optional[str] = None
    n_active: int = 0
    n_state1: int = 0
    n_state3: int = 0
    txn_id: Optional[int] = None
    measure: Optional[float] = None
    threshold: Optional[float] = None
    detail: str = ""

    @property
    def frac_state1(self) -> float:
        """Observed State 1 (running & mature) fraction."""
        return self.n_state1 / self.n_active if self.n_active else 0.0

    @property
    def frac_state3(self) -> float:
        """Observed State 3 (blocked & mature) fraction."""
        return self.n_state3 / self.n_active if self.n_active else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A flat JSON-serializable record (the decisions.jsonl row)."""
        return {
            "time": self.time,
            "controller": self.controller,
            "action": self.action,
            "region": self.region,
            "n_active": self.n_active,
            "n_state1": self.n_state1,
            "n_state3": self.n_state3,
            "frac_state1": self.frac_state1,
            "frac_state3": self.frac_state3,
            "txn_id": self.txn_id,
            "measure": self.measure,
            "threshold": self.threshold,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        base = (f"[{self.time:10.4f}] {self.action:<16} "
                f"active={self.n_active:<4} s1={self.n_state1:<4} "
                f"s3={self.n_state3}")
        if self.region is not None:
            base += f" region={self.region}"
        if self.txn_id is not None:
            base += f" txn={self.txn_id}"
        return f"{base} ({self.detail})" if self.detail else base


class DecisionLog:
    """Bounded in-memory log of controller decisions.

    Args:
        capacity: maximum decisions retained; older entries are dropped
            FIFO once the bound is hit (``None`` = unbounded).
    """

    def __init__(self, capacity: Optional[int] = 100_000):
        self.capacity = capacity
        self._decisions: Deque[ControllerDecision] = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[ControllerDecision]:
        return iter(self._decisions)

    def record(self, decision: ControllerDecision) -> None:
        """Append one decision (subject to capacity)."""
        if (self.capacity is not None
                and len(self._decisions) >= self.capacity):
            self.dropped += 1
        self._decisions.append(decision)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def decisions(self, action: Optional[str] = None
                  ) -> List[ControllerDecision]:
        """Decisions, optionally restricted to one action kind."""
        if action is None:
            return list(self._decisions)
        return [d for d in self._decisions if d.action == action]

    def counts(self) -> Dict[str, int]:
        """Decision counts by action kind."""
        out: Dict[str, int] = {}
        for d in self._decisions:
            out[d.action] = out.get(d.action, 0) + 1
        return out

    def victims(self) -> List[int]:
        """Transaction ids of load-control abort victims, in order."""
        return [d.txn_id for d in self._decisions
                if d.action == DecisionAction.ABORT_VICTIM
                and d.txn_id is not None]

    def format(self, limit: Optional[int] = None) -> str:
        """Render the (tail of the) log as text."""
        decisions = list(self._decisions)
        if limit is not None:
            decisions = decisions[-limit:]
        return "\n".join(str(d) for d in decisions)
