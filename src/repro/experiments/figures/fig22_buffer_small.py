"""Figure 22: base case with a 100-page LRU buffer pool.

The Figure 7 sweep rerun with ``buf_size = 100`` (10% of the database).
The paper's claim: throughput rises (fewer I/Os) but the picture is
otherwise identical — Half-and-Half remains effective.
"""

from __future__ import annotations

from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.figures.fig07_base_case import control_sweep
from repro.experiments.scales import Scale

__all__ = ["FIGURE", "run", "BUFFER_PAGES"]

BUFFER_PAGES = 100


def run(scale: Scale) -> FigureResult:
    result = control_sweep(scale, figure_id="fig22",
                           buf_size=BUFFER_PAGES)
    result.title += f" (LRU buffer, {BUFFER_PAGES} pages)"
    return result


FIGURE = FigureSpec(
    figure_id="fig22",
    title="Base case with a 100-page buffer pool",
    paper_claim=("higher absolute throughput, otherwise identical: "
                 "Half-and-Half still prevents thrashing"),
    run=run,
    tags=("buffer", "sensitivity"),
)
