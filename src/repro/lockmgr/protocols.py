"""Locking protocols: strict two-phase (degree 3) and degree-2.

The paper's default protocol is strict 2PL: every lock is held until the
transaction commits (after deferred updates) or aborts.  For the Figure 13
experiment, read-only transactions instead use the *degree 2* protocol of
[Gray79, Moha89]: "transactions lock each item before reading it, but they
unlock the item before reading the next one".  Such transactions see a
committed but non-serializable view.
"""

from __future__ import annotations

import enum

__all__ = ["LockProtocol"]


class LockProtocol(enum.Enum):
    """Which locking discipline a transaction follows."""

    TWO_PHASE = "2PL"       # strict 2PL: release everything at end
    DEGREE_TWO = "degree2"  # cursor stability: release each S lock after use

    def releases_read_locks_early(self) -> bool:
        """True if read locks are dropped page-at-a-time."""
        return self is LockProtocol.DEGREE_TWO
