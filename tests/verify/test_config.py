"""Unit tests for VerifyConfig validation and CLI parsing."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.verify import VerifyConfig
from repro.verify.config import CADENCES, DEFAULT_SAMPLE_EVENTS


def test_defaults():
    config = VerifyConfig()
    assert config.cadence == "sampled"
    assert config.sample_events == DEFAULT_SAMPLE_EVENTS
    assert config.shadow_lock_table is True
    assert config.shadow_regions is True
    assert config.evidence_dir is None


def test_all_cadences_accepted():
    for cadence in CADENCES:
        assert VerifyConfig(cadence=cadence).cadence == cadence


def test_unknown_cadence_rejected():
    with pytest.raises(ConfigurationError, match="cadence"):
        VerifyConfig(cadence="sometimes")


def test_nonpositive_sample_events_rejected():
    for bad in (0, -1):
        with pytest.raises(ConfigurationError, match="sample_events"):
            VerifyConfig(sample_events=bad)


def test_config_is_frozen():
    config = VerifyConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.cadence = "every"


def test_parse_defaults_to_sampled():
    assert VerifyConfig.parse(None).cadence == "sampled"
    assert VerifyConfig.parse("").cadence == "sampled"


def test_parse_explicit_cadence_and_evidence_dir(tmp_path):
    config = VerifyConfig.parse("every", evidence_dir=str(tmp_path))
    assert config.cadence == "every"
    assert config.evidence_dir == str(tmp_path)


def test_parse_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        VerifyConfig.parse("always")
