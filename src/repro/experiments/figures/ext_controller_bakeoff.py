"""Controller bake-off: abort-shedding vs passivation vs model solving.

An extension figure (no paper counterpart): the same terminal sweep as
the paper's thrashing experiment, run under four load-control policies
representing three shedding philosophies —

* **Half-and-Half** — the paper's contribution: shed overload by
  *aborting* blocked transactions (work is discarded);
* **Malthusian** — shed the same overload by *passivating* zero-lock
  waiters into a cold set (work is preserved; see
  :mod:`repro.control.malthusian`);
* **Analytic MPC** — don't shed at all: *solve* the mean-value model
  for the optimal MPL and admit exactly that many
  (:mod:`repro.control.analytic`);
* **Fixed MPL** — the static reference the paper measures against.

Each policy runs under the uniform base workload and under a genuine
hot-spot workload (80% of accesses to 20% of pages), where the
contention knee sits far to the left of the uniform case and a
controller's adaptivity actually matters.  Committed page throughput is
plotted; per-point abort counts ride along in the extras so the cost of
each policy's shedding currency (discarded work vs parked time vs
idle terminals) can be compared, not just its throughput.
"""

from __future__ import annotations

from typing import Dict, List

from repro.control.analytic import AnalyticMPCController
from repro.control.fixed_mpl import FixedMPLController
from repro.control.malthusian import MalthusianController
from repro.core.half_and_half import HalfAndHalfController
from repro.dbms.config import SimulationParameters
from repro.experiments.figures.base import (FigureResult, FigureSpec,
                                            RunSpec, simulate_specs)
from repro.experiments.scales import Scale
from repro.experiments.studies import base_params, terminal_sweep_points
from repro.sim.rng import RandomStreams
from repro.workload.hotspot import HotspotWorkload

__all__ = ["FIGURE", "run", "HotspotWorkloadFactory", "CONTROLLERS"]

_REFERENCE_MPL = 35   # the paper's well-chosen fixed MPL for the base case


class HotspotWorkloadFactory:
    """Picklable b–c-rule workload factory (cf. fig12's mixed factory).

    A module-level class rather than a closure so run specs carrying it
    can cross process boundaries and hash into stable cache keys.
    """

    def __init__(self, hot_fraction: float = 0.2,
                 access_skew: float = 0.8):
        self.hot_fraction = hot_fraction
        self.access_skew = access_skew

    def __call__(self, streams: RandomStreams,
                 params: SimulationParameters) -> HotspotWorkload:
        return HotspotWorkload(streams, params,
                               hot_fraction=self.hot_fraction,
                               access_skew=self.access_skew)


# Display label -> (controller factory, args).  Order is plot order.
CONTROLLERS = (
    ("Half-and-Half", HalfAndHalfController, ()),
    ("Malthusian", MalthusianController, ()),
    ("Analytic MPC", AnalyticMPCController, ()),
    (f"MPL {_REFERENCE_MPL}", FixedMPLController, (_REFERENCE_MPL,)),
)

_WORKLOADS = (
    ("", None),                              # uniform base workload
    (" (hotspot)", HotspotWorkloadFactory()),
)


def run(scale: Scale) -> FigureResult:
    terminals = terminal_sweep_points(scale)
    specs, index = [], []
    for suffix, factory in _WORKLOADS:
        for label, controller_factory, args in CONTROLLERS:
            for n_terms in terminals:
                specs.append(RunSpec(
                    params=base_params(scale, num_terms=n_terms),
                    controller_factory=controller_factory,
                    controller_args=args,
                    workload_factory=factory))
                index.append((label + suffix, n_terms))
    results = simulate_specs(specs, label="ext_controller_bakeoff")

    series: Dict[str, List[float]] = {}
    aborts: Dict[str, List[int]] = {}
    restarts: Dict[str, List[float]] = {}
    for (series_name, _), result in zip(index, results):
        series.setdefault(series_name, []).append(
            result.page_throughput.mean)
        aborts.setdefault(series_name, []).append(result.aborts)
        restarts.setdefault(series_name, []).append(
            result.avg_restarts_per_commit)
    return FigureResult(
        figure_id="ext_controller_bakeoff",
        title="Controller bake-off: throughput vs offered load",
        x_label="number of terminals",
        y_label="pages/second",
        x_values=[float(t) for t in terminals],
        series=series,
        extras={"aborts": aborts,
                "avg_restarts_per_commit": restarts,
                "reference_mpl": _REFERENCE_MPL},
    )


FIGURE = FigureSpec(
    figure_id="ext_controller_bakeoff",
    title="Controller bake-off (extension)",
    paper_claim=("Passivation sheds load waste-free: Malthusian should "
                 "match or beat Half-and-Half past the knee with far "
                 "fewer aborts, and the analytic MPC should hold the "
                 "knee without ever thrashing"),
    run=run,
    tags=("extension", "controllers", "bakeoff"),
)
