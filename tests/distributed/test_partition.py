"""Unit tests for range partitioning."""

from __future__ import annotations

import pytest

from repro.distributed.partition import RangePartition
from repro.errors import ConfigurationError


def test_even_partition():
    part = RangePartition(db_size=100, num_sites=4)
    assert part.range_of(0) == (0, 25)
    assert part.range_of(3) == (75, 100)
    assert part.site_of(0) == 0
    assert part.site_of(24) == 0
    assert part.site_of(25) == 1
    assert part.site_of(99) == 3


def test_remainder_goes_to_last_site():
    part = RangePartition(db_size=10, num_sites=3)
    assert part.range_of(0) == (0, 3)
    assert part.range_of(1) == (3, 6)
    assert part.range_of(2) == (6, 10)
    assert part.pages_at(2) == 4
    assert sum(part.pages_at(s) for s in part.sites()) == 10


def test_single_site_owns_everything():
    part = RangePartition(db_size=50, num_sites=1)
    assert all(part.site_of(p) == 0 for p in range(50))


def test_every_page_has_exactly_one_owner():
    part = RangePartition(db_size=97, num_sites=5)
    for page in range(97):
        site = part.site_of(page)
        lo, hi = part.range_of(site)
        assert lo <= page < hi


def test_invalid_inputs():
    with pytest.raises(ConfigurationError):
        RangePartition(db_size=2, num_sites=3)
    with pytest.raises(ConfigurationError):
        RangePartition(db_size=10, num_sites=0)
    part = RangePartition(db_size=10, num_sites=2)
    with pytest.raises(ConfigurationError):
        part.site_of(10)
    with pytest.raises(ConfigurationError):
        part.range_of(2)
