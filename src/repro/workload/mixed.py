"""Multi-class (mixed) workloads: Figures 12 and 13.

The paper's heterogeneous experiment assigns 160 of 200 terminals to a
class of small update transactions (4 pages, every page written) and the
remaining 40 terminals to large read-only transactions (24 pages), for an
average readset of 8 pages.  Figure 13 repeats the experiment with the
read-only class using the degree-2 lock protocol.

:class:`TransactionClass` is a declarative class spec; terminals are
assigned to classes by contiguous ranges in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.dbms.transaction import Transaction
from repro.errors import WorkloadError
from repro.lockmgr.protocols import LockProtocol
from repro.sim.rng import RandomStreams

from repro.workload.base import WorkloadGenerator

__all__ = ["TransactionClass", "MixedWorkload",
           "paper_mixed_classes"]


@dataclass(frozen=True)
class TransactionClass:
    """One class in a multi-class workload."""

    name: str
    num_terminals: int
    tran_size: int
    write_prob: float
    protocol: LockProtocol = field(default=LockProtocol.TWO_PHASE)

    def __post_init__(self) -> None:
        if self.num_terminals < 0:
            raise WorkloadError(
                f"class {self.name!r}: negative terminal count")
        if self.tran_size < 1:
            raise WorkloadError(
                f"class {self.name!r}: tran_size must be positive")
        if not 0.0 <= self.write_prob <= 1.0:
            raise WorkloadError(
                f"class {self.name!r}: write_prob must be in [0, 1]")


def paper_mixed_classes(degree_two_readers: bool = False
                        ) -> List[TransactionClass]:
    """The exact two-class mix of Figures 12–13."""
    reader_protocol = (LockProtocol.DEGREE_TWO if degree_two_readers
                       else LockProtocol.TWO_PHASE)
    return [
        TransactionClass(name="small-update", num_terminals=160,
                         tran_size=4, write_prob=1.0),
        TransactionClass(name="large-readonly", num_terminals=40,
                         tran_size=24, write_prob=0.0,
                         protocol=reader_protocol),
    ]


class MixedWorkload(WorkloadGenerator):
    """Terminals partitioned into contiguous per-class ranges."""

    def __init__(self, streams: RandomStreams, db_size: int,
                 classes: Sequence[TransactionClass]):
        super().__init__(streams)
        if not classes:
            raise WorkloadError("mixed workload needs at least one class")
        self.db_size = db_size
        self.classes = list(classes)
        self._boundaries: List[int] = []
        total = 0
        for cls in self.classes:
            total += cls.num_terminals
            self._boundaries.append(total)
        self.total_terminals = total

    @property
    def name(self) -> str:
        parts = ", ".join(
            f"{c.name}×{c.num_terminals}" for c in self.classes)
        return f"Mixed({parts})"

    def class_for_terminal(self, terminal_id: int) -> TransactionClass:
        """The class a terminal submits (contiguous range assignment)."""
        if not 0 <= terminal_id < self.total_terminals:
            raise WorkloadError(
                f"terminal {terminal_id} outside [0, {self.total_terminals})")
        for cls, bound in zip(self.classes, self._boundaries):
            if terminal_id < bound:
                return cls
        raise WorkloadError("unreachable: boundary scan fell through")

    def make_transaction(self, txn_id: int, terminal_id: int,
                         now: float) -> Transaction:
        cls = self.class_for_terminal(terminal_id)
        return self._build(txn_id, terminal_id, now,
                           db_size=self.db_size,
                           mean_size=cls.tran_size,
                           write_prob=cls.write_prob,
                           protocol=cls.protocol,
                           class_name=cls.name)
