"""Figure 7: the Half-and-Half algorithm on the base case.

Page throughput versus terminals for Half-and-Half load control against
raw 2PL.  The paper's claim: "The algorithm successfully keeps the system
operating at its peak performance level once the number of terminals
exceeds the point where 2PL reaches its maximum page throughput."
"""

from __future__ import annotations

from repro.control.no_control import NoControlController
from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.runner import run_simulation
from repro.experiments.scales import Scale
from repro.experiments.studies import base_params, terminal_sweep_points

__all__ = ["FIGURE", "run", "control_sweep"]


def control_sweep(scale: Scale, figure_id: str,
                  **param_overrides) -> FigureResult:
    """Shared H&H-vs-raw-2PL terminal sweep (Figures 7, 22, 23)."""
    points = terminal_sweep_points(scale)
    hh_curve = []
    raw_curve = []
    hh_mpl = []
    for terms in points:
        params = base_params(scale, num_terms=terms, **param_overrides)
        hh = run_simulation(params, HalfAndHalfController())
        hh_curve.append(hh.page_throughput.mean)
        hh_mpl.append(hh.avg_mpl)
        raw_curve.append(
            run_simulation(params, NoControlController())
            .page_throughput.mean)
    return FigureResult(
        figure_id=figure_id,
        title="Page Throughput: Half-and-Half vs raw 2PL",
        x_label="terminals",
        y_label="pages/second",
        x_values=[float(t) for t in points],
        series={"Half-and-Half": hh_curve,
                "2PL (no load control)": raw_curve},
        extras={"hh_avg_mpl": hh_mpl},
    )


def run(scale: Scale) -> FigureResult:
    return control_sweep(scale, figure_id="fig07")


FIGURE = FigureSpec(
    figure_id="fig07",
    title="Half-and-Half holds the base case at peak throughput",
    paper_claim=("Half-and-Half stays at peak throughput as terminals "
                 "grow while raw 2PL thrashes"),
    run=run,
    tags=("half-and-half", "base-case"),
)
