"""Figure 19: bounded wait queues — raw page rate.

The raw (committed + aborted) page rate of the Figure 18 runs.  The
paper's claim: with a wait limit of 1, "many pages are processed by
transactions that are aborted, i.e., resources are wasted due to
abort-induced thrashing" — the limit-1 raw rate stays high while its
throughput collapses.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.figures.fig18_bounded_wait import bounded_wait_study
from repro.experiments.scales import Scale
from repro.experiments.studies import terminal_sweep_points

__all__ = ["FIGURE", "run"]


def run(scale: Scale) -> FigureResult:
    study = bounded_wait_study(scale)
    points = terminal_sweep_points(scale)
    series: Dict[str, List[float]] = {
        name: [study[name][t].raw_page_rate.mean for t in points]
        for name in study
    }
    return FigureResult(
        figure_id="fig19",
        title="Raw Page Rate: bounded wait queues vs Half-and-Half",
        x_label="terminals",
        y_label="pages/second (committed + aborted)",
        x_values=[float(t) for t in points],
        series=series,
    )


FIGURE = FigureSpec(
    figure_id="fig19",
    title="Bounded wait queues: raw page rate",
    paper_claim=("limit 1 keeps the system busy processing pages for "
                 "transactions that end up aborted"),
    run=run,
    tags=("bounded-wait", "raw-rate"),
)
