"""Waits-for graph view over the lock table.

The lock table already knows, for each blocked transaction, exactly which
transactions prevent its pending request (:meth:`LockTable.blocking_set`).
This module exposes that adjacency as an explicit directed graph snapshot,
which is convenient for tests, for metrics, and for algorithms that want to
reason about the whole graph (the deadlock detector itself walks the
adjacency lazily and does not need the snapshot).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set

from repro.lockmgr.lock_table import LockTable

__all__ = ["WaitsForGraph", "build_graph"]

Txn = Any


class WaitsForGraph:
    """An immutable snapshot of the waits-for relation."""

    def __init__(self, edges: Dict[Txn, Set[Txn]]):
        self._edges = edges

    def successors(self, txn: Txn) -> Set[Txn]:
        """Transactions that ``txn`` waits for (empty if not blocked)."""
        return set(self._edges.get(txn, ()))

    def nodes(self) -> Set[Txn]:
        """All transactions appearing in the graph."""
        nodes: Set[Txn] = set(self._edges)
        for targets in self._edges.values():
            nodes.update(targets)
        return nodes

    def edges(self) -> List[tuple]:
        """All (waiter, blocker) pairs."""
        return [(src, dst)
                for src, targets in self._edges.items()
                for dst in targets]

    def has_cycle(self) -> bool:
        """True if any directed cycle exists (iterative three-color DFS)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Txn, int] = {}
        for root in self._edges:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[tuple] = [(root, iter(self._edges.get(root, ())))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        return True
                    if c == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(self._edges.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return False


def build_graph(lock_table: LockTable,
                waiters: Iterable[Txn]) -> WaitsForGraph:
    """Snapshot the waits-for graph for the given blocked transactions."""
    edges: Dict[Txn, Set[Txn]] = {}
    for txn in waiters:
        blockers = lock_table.blocking_set(txn)
        if blockers:
            edges[txn] = blockers
    return WaitsForGraph(edges)
