"""Figure 13: mixed workload with degree-2 locking for the readers.

The Figure 12 experiment repeated with the large read-only transactions
running the degree-2 lock protocol (lock each page, release before the
next read).  The paper's claim: the no-load-control curve is less sharp
and peaks higher — the readers behave like strings of tiny transactions
— but thrashing still occurs at high MPLs, and Half-and-Half again
operates near the optimum.
"""

from __future__ import annotations

from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.figures.fig12_mixed import mixed_workload_sweep
from repro.experiments.scales import Scale

__all__ = ["FIGURE", "run"]


def run(scale: Scale) -> FigureResult:
    return mixed_workload_sweep(scale, figure_id="fig13",
                                degree_two_readers=True)


FIGURE = FigureSpec(
    figure_id="fig13",
    title="Mixed workload with degree-2 read-only transactions",
    paper_claim=("flatter, higher-peaked curve; thrashing persists at "
                 "high MPL; Half-and-Half stays near the optimum"),
    run=run,
    tags=("mixed-workload", "degree-2"),
)
