"""Ablation: victim selection order for overload correction.

The paper picks victims youngest-first (least invested work) and only
among blocked transactions that block others (so each abort frees
someone).  This ablation compares youngest vs oldest vs random victim
order and the any-blocked relaxation on a high-contention configuration
where load-control aborts actually fire.
"""

from repro.core.half_and_half import HalfAndHalfController
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import run_simulation
from repro.experiments.studies import base_params


def test_abl_victim_policy(benchmark, scale):
    def run():
        # 24-page transactions: serious contention, frequent overload.
        params = base_params(scale, tran_size=24)
        variants = [
            HalfAndHalfController(victim_policy="youngest"),
            HalfAndHalfController(victim_policy="oldest"),
            HalfAndHalfController(victim_policy="random"),
            HalfAndHalfController(require_blocking_victims=False),
        ]
        return [run_simulation(params, v) for v in variants]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_results_table(
        results, title="Ablation: overload victim selection"))

    youngest, oldest, _random, _any = results

    # Youngest-first wastes the least invested work: committed work per
    # abort should not be worse than oldest-first by much.  (Retained
    # timestamps also make oldest-first starvation-prone.)
    assert youngest.page_throughput.mean > \
        0.85 * max(r.page_throughput.mean for r in results)

    # Oldest-first discards the most invested work, visible as a higher
    # wasted-page rate per load-control abort (guard against div-zero on
    # quiet runs).
    if oldest.aborts and youngest.aborts:
        waste_young = youngest.wasted_page_rate
        waste_old = oldest.wasted_page_rate
        assert waste_old > 0.5 * waste_young   # sanity: both measurable
