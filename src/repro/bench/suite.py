"""The pinned benchmark suite.

Five configurations exercise the simulator's distinct hot paths, so a
wall-clock regression anywhere in the engine, the lock manager, or a
controller shows up in at least one entry:

* ``base_hh``         — the paper's base case under Half-and-Half
  (arrival pressure + admission control + deadlock detection);
* ``fixed_mpl_50``    — static MPL limit (the cheap-controller path);
* ``no_control``      — everything admitted (maximum blocking, long
  wait chains: the lock-table stress case);
* ``buffered_hh``     — LRU buffer pool on (buffer hit bookkeeping);
* ``high_contention`` — small database, write-heavy (abort/restart
  churn and wound-free deadlock cycles dominate).

Entries are *pinned*: changing parameters here invalidates every
existing ``BENCH_*.json`` comparison, so treat the suite like a schema.
Two scales share the same entries — ``smoke`` (seconds, for CI) and
``full`` (minutes, for real measurement); both are deterministic in
their simulated trajectory, only wall clock varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.control.fixed_mpl import FixedMPLController
from repro.control.no_control import NoControlController
from repro.core.half_and_half import HalfAndHalfController
from repro.dbms.config import SimulationParameters
from repro.errors import ExperimentError

__all__ = ["BenchEntry", "SCALES", "suite_for", "entry_names"]


@dataclass(frozen=True)
class BenchEntry:
    """One pinned benchmark configuration."""

    name: str
    params: SimulationParameters
    controller_factory: Callable[..., Any]
    controller_args: Tuple[Any, ...] = ()

    def make_controller(self):
        return self.controller_factory(*self.controller_args)


# Scale name -> measurement-window overrides applied to every entry.
SCALES: Dict[str, Dict[str, Any]] = {
    "smoke": {"warmup_time": 5.0, "num_batches": 4, "batch_time": 10.0},
    "full": {"warmup_time": 30.0, "num_batches": 10, "batch_time": 30.0},
}


def _entries(scale_overrides: Dict[str, Any]) -> Tuple[BenchEntry, ...]:
    base = SimulationParameters(num_terms=100, db_size=1000,
                                **scale_overrides)
    return (
        BenchEntry("base_hh", base, HalfAndHalfController),
        BenchEntry("fixed_mpl_50", base, FixedMPLController, (50,)),
        BenchEntry("no_control", base, NoControlController),
        BenchEntry("buffered_hh", base.replace(buf_size=250),
                   HalfAndHalfController),
        BenchEntry("high_contention",
                   base.replace(db_size=300, write_prob=0.5),
                   HalfAndHalfController),
    )


def suite_for(scale: str) -> Tuple[BenchEntry, ...]:
    """The pinned entries at one scale (``smoke`` or ``full``)."""
    overrides = SCALES.get(scale)
    if overrides is None:
        raise ExperimentError(
            f"unknown bench scale {scale!r}; "
            f"choose from {sorted(SCALES)}")
    return _entries(overrides)


def entry_names() -> Tuple[str, ...]:
    """Names of the pinned entries, in suite order."""
    return tuple(e.name for e in _entries(SCALES["smoke"]))
