"""Extension: the controller bake-off — abort vs passivate vs solve.

Four load-control policies race over the thrashing terminal sweep,
under the uniform base workload and under a genuine hot spot.  The
policies differ in their *shedding currency*:

* **Half-and-Half** pays in discarded work (aborted transactions);
* **Malthusian** pays in parked time (blocked zero-lock transactions
  are passivated into a cold set with their state intact);
* **Analytic MPC** pays in idle terminals (it never sheds — it solves
  the mean-value model and refuses to admit past its argmax);
* **MPL 35** is the static reference.

The shape claims asserted here are the extension's acceptance bar:
past the knee on the uniform workload, passivation matches or beats
abort-shedding on throughput while spending far fewer aborts, and the
model-solving controller holds its peak instead of thrashing.  On the
hot spot, abort-shedding retains a structural edge passivation cannot
copy — aborting a convoy member releases its hot-page locks and
dissolves the clot, while passivation (restricted to zero-lock
waiters) can only prevent the next convoy — so Malthusian is only
required to stay competitive there, not to win.
"""

from repro.experiments.figures.ext_controller_bakeoff import FIGURE


def _series(result, label):
    return [y for y in result.series[label] if y is not None]


def test_ext_controller_bakeoff(run_figure):
    result = run_figure(FIGURE)

    hh = _series(result, "Half-and-Half")
    malthusian = _series(result, "Malthusian")
    analytic = _series(result, "Analytic MPC")
    aborts = result.extras["aborts"]

    # Post-knee (the last, most overloaded sweep point) on the uniform
    # workload: passivation matches or beats abort-shedding ...
    assert malthusian[-1] >= 0.9 * hh[-1]

    # ... while spending strictly fewer aborts over the whole sweep —
    # passivated transactions keep their locks' worth of finished work,
    # so Malthusian's abort count stays near the deadlock-only floor.
    assert sum(aborts["Malthusian"]) < sum(aborts["Half-and-Half"])

    # The model-solving controller never thrashes: its post-peak tail
    # holds near its own peak.
    assert analytic[-1] >= 0.75 * max(analytic)

    # Every adaptive policy survives the hot spot (knee far left of the
    # uniform case); passivation stays competitive with abort-shedding
    # even where convoy-dissolving aborts have the structural edge.
    hh_hot = _series(result, "Half-and-Half (hotspot)")
    malthusian_hot = _series(result, "Malthusian (hotspot)")
    assert malthusian_hot[-1] >= 0.85 * hh_hot[-1]
    assert (sum(aborts["Malthusian (hotspot)"])
            < sum(aborts["Half-and-Half (hotspot)"]))
