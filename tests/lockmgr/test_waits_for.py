"""Unit tests for the waits-for graph snapshot."""

from __future__ import annotations

from repro.lockmgr.lock_table import LockTable
from repro.lockmgr.modes import LockMode
from repro.lockmgr.waits_for import WaitsForGraph, build_graph


class T:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


def test_empty_graph_has_no_cycle():
    g = WaitsForGraph({})
    assert not g.has_cycle()
    assert g.nodes() == set()
    assert g.edges() == []


def test_simple_edge():
    a, b = T("a"), T("b")
    g = WaitsForGraph({a: {b}})
    assert g.successors(a) == {b}
    assert g.successors(b) == set()
    assert g.nodes() == {a, b}
    assert g.edges() == [(a, b)]
    assert not g.has_cycle()


def test_two_cycle_detected():
    a, b = T("a"), T("b")
    g = WaitsForGraph({a: {b}, b: {a}})
    assert g.has_cycle()


def test_long_chain_no_cycle():
    ts = [T(str(i)) for i in range(10)]
    edges = {ts[i]: {ts[i + 1]} for i in range(9)}
    assert not WaitsForGraph(edges).has_cycle()


def test_self_loop_is_a_cycle():
    a = T("a")
    assert WaitsForGraph({a: {a}}).has_cycle()


def test_diamond_no_cycle():
    a, b, c, d = T("a"), T("b"), T("c"), T("d")
    g = WaitsForGraph({a: {b, c}, b: {d}, c: {d}})
    assert not g.has_cycle()


def test_build_graph_from_lock_table():
    table = LockTable()
    a, b, c = T("a"), T("b"), T("c")
    table.request(a, 1, LockMode.X)
    table.request(b, 1, LockMode.S)
    table.request(c, 1, LockMode.S)
    g = build_graph(table, [b, c])
    assert g.successors(b) == {a}
    assert g.successors(c) == {a}
    assert not g.has_cycle()


def test_build_graph_reflects_cycle():
    table = LockTable()
    a, b = T("a"), T("b")
    table.request(a, 1, LockMode.X)
    table.request(b, 2, LockMode.X)
    table.request(a, 2, LockMode.S)
    table.request(b, 1, LockMode.S)
    g = build_graph(table, [a, b])
    assert g.has_cycle()
