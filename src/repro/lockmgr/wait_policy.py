"""Wait policies: what to do when a lock request must block.

The default policy (:class:`UnboundedWaitPolicy`) always lets the request
wait — plain 2PL.  :class:`BoundedWaitPolicy` implements the bounded wait
queue scheme of Balter, Berard & Decitre [Balt82] that the paper compares
against in Figures 18–19, generalized exactly as the paper's footnote 7
describes: their "K or fewer waiters" limit (which considered only
exclusive locks) becomes "K or fewer *compatible groups* of waiters", where
a compatible group is a maximal run of queued requests in mutually
compatible modes.  Several S requests waiting behind an X lock form one
group, since they can all be granted together when the X lock is released.
"""

from __future__ import annotations

from typing import Any, Hashable, List

from repro.errors import ConfigurationError
from repro.lockmgr.lock_table import LockTable
from repro.lockmgr.modes import LockMode, compatible

__all__ = [
    "WaitPolicy",
    "UnboundedWaitPolicy",
    "BoundedWaitPolicy",
    "NoWaitPolicy",
    "compatible_groups",
]

Txn = Any
Page = Hashable


def compatible_groups(modes: List[LockMode]) -> int:
    """Count maximal runs of mutually compatible modes in queue order.

    ``[S, S, X, S, S]`` has three groups: {S,S}, {X}, {S,S}.
    """
    groups = 0
    current: List[LockMode] = []
    for mode in modes:
        if current and all(compatible(m, mode) and compatible(mode, m)
                           for m in current):
            current.append(mode)
        else:
            groups += 1
            current = [mode]
    return groups


class WaitPolicy:
    """Decides whether a request that just blocked may keep waiting."""

    def allow_wait(self, lock_table: LockTable, txn: Txn,
                   page: Page, mode: LockMode) -> bool:
        """Called *after* the request was enqueued.

        Return True to let the transaction wait; False to reject it (the
        system then cancels the wait and aborts/restarts the transaction).
        """
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class UnboundedWaitPolicy(WaitPolicy):
    """Plain 2PL: blocked requests always wait."""

    def allow_wait(self, lock_table: LockTable, txn: Txn,
                   page: Page, mode: LockMode) -> bool:
        return True


class NoWaitPolicy(WaitPolicy):
    """Immediate restart: a conflicting request aborts the requester.

    The classic "no waiting" alternative to blocking 2PL studied in
    [Agra87a] (which the paper leans on for its resource-contention
    arguments).  Deadlock-free by construction — no transaction ever
    waits — but it converts every conflict into wasted work, so under
    resource contention it thrashes the way Figures 18–19 show for the
    tightest bounded-wait limit.
    """

    def allow_wait(self, lock_table: LockTable, txn: Txn,
                   page: Page, mode: LockMode) -> bool:
        return False


class BoundedWaitPolicy(WaitPolicy):
    """Abort requests that would exceed ``limit`` compatible waiter groups.

    [Balt82] concluded a limit of 1 was best in their (resource-contention-
    free) model; the paper shows that with resource contention a limit of 1
    causes severe abort-induced thrashing — our Figures 18–19 reproduce
    that comparison.
    """

    def __init__(self, limit: int = 1):
        if limit < 1:
            raise ConfigurationError(
                f"bounded wait limit must be >= 1, got {limit}")
        self.limit = limit

    @property
    def name(self) -> str:
        return f"BoundedWait(limit={self.limit})"

    def allow_wait(self, lock_table: LockTable, txn: Txn,
                   page: Page, mode: LockMode) -> bool:
        modes = lock_table.waiter_modes(page)
        return compatible_groups(modes) <= self.limit
