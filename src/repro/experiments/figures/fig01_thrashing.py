"""Figure 1: DBMS thrashing under 2PL (base case).

Page throughput versus the number of terminals for raw 2PL with no load
control, against the "no concurrency control" reference curve.  The
paper's claim: without CC, performance rises then levels off at resource
saturation; with 2PL it rises, peaks (around 35 terminals), then drops
due to lock thrashing.
"""

from __future__ import annotations

from repro.control.no_control import NoControlController
from repro.experiments.figures.base import (FigureResult, FigureSpec,
                                            RunSpec, simulate_specs)
from repro.experiments.scales import Scale
from repro.experiments.studies import base_params, terminal_sweep_points

__all__ = ["FIGURE", "run"]


def run(scale: Scale) -> FigureResult:
    points = terminal_sweep_points(scale)
    specs = []
    for terms in points:
        params = base_params(scale, num_terms=terms)
        specs.append(RunSpec(params=params,
                             controller_factory=NoControlController))
        specs.append(RunSpec(params=params.replace(locking_enabled=False),
                             controller_factory=NoControlController))
    results = simulate_specs(specs, label="fig01")
    with_2pl = [r.page_throughput.mean for r in results[0::2]]
    without_cc = [r.page_throughput.mean for r in results[1::2]]
    return FigureResult(
        figure_id="fig01",
        title="Page Throughput (2PL thrashing, base case)",
        x_label="terminals",
        y_label="pages/second",
        x_values=[float(t) for t in points],
        series={"2PL (no load control)": with_2pl,
                "no concurrency control": without_cc},
    )


FIGURE = FigureSpec(
    figure_id="fig01",
    title="2PL thrashing vs no-CC reference (base case)",
    paper_claim=("no-CC throughput rises then levels off; 2PL rises, "
                 "peaks, then falls as terminals increase"),
    run=run,
    tags=("introduction", "thrashing"),
)
