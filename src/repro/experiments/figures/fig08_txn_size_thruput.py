"""Figure 8: page throughput versus transaction size.

200 terminals, mean readset size varying from 4 to 72 pages.  Curves:
Half-and-Half, the searched optimal fixed MPL, and the two reference
fixed MPLs (35, the base-case optimum; 20, an arbitrary alternative).
The paper's claim: Half-and-Half stays within a few percent of the
optimal-MPL line across the whole range, while each fixed MPL loses at
the end of the range it was not tuned for.
"""

from __future__ import annotations

from repro.experiments.figures.base import FigureResult, FigureSpec
from repro.experiments.scales import Scale
from repro.experiments.studies import REFERENCE_MPLS, txn_size_study

__all__ = ["FIGURE", "run"]


def run(scale: Scale) -> FigureResult:
    study = txn_size_study(scale)
    series = {
        "Half-and-Half": [
            study.half_and_half[s].page_throughput.mean
            for s in study.sizes],
        "Optimal MPL": [
            study.optimal[s].page_throughput.mean for s in study.sizes],
    }
    for mpl in REFERENCE_MPLS:
        series[f"MPL {mpl}"] = [
            study.fixed[(mpl, s)].page_throughput.mean
            for s in study.sizes]
    return FigureResult(
        figure_id="fig08",
        title="Page Throughput vs transaction size (200 terminals)",
        x_label="mean transaction size (pages)",
        y_label="pages/second",
        x_values=[float(s) for s in study.sizes],
        series=series,
        extras={"optimal_mpl": dict(study.optimal_mpl)},
    )


FIGURE = FigureSpec(
    figure_id="fig08",
    title="Throughput across transaction sizes",
    paper_claim=("Half-and-Half tracks the optimal MPL within a few "
                 "percent over the whole size range; each fixed MPL "
                 "suffers away from its tuning point"),
    run=run,
    tags=("half-and-half", "txn-size"),
)
