"""Unit tests for the 50%-rule region classification."""

from __future__ import annotations

from repro.core.regions import DEFAULT_DELTA, Region, classify_region


def test_empty_system_is_underloaded():
    assert classify_region(0, 0, 0) is Region.UNDERLOADED


def test_mostly_mature_running_is_underloaded():
    # 6 of 10 State 1 -> 0.6 > 0.525
    assert classify_region(10, 6, 0) is Region.UNDERLOADED


def test_mostly_mature_blocked_is_overloaded():
    assert classify_region(10, 0, 6) is Region.OVERLOADED


def test_balanced_is_comfortable():
    assert classify_region(10, 5, 5) is Region.COMFORTABLE


def test_exactly_half_is_comfortable():
    """The 50% rule uses strict > with the delta tolerance."""
    assert classify_region(2, 1, 1) is Region.COMFORTABLE
    assert classify_region(100, 50, 50) is Region.COMFORTABLE


def test_delta_hysteresis_window():
    # 52/100 = 0.52 < 0.525: inside the tolerance window.
    assert classify_region(100, 52, 0) is Region.COMFORTABLE
    # 53/100 = 0.53 > 0.525: outside.
    assert classify_region(100, 53, 0) is Region.UNDERLOADED
    assert classify_region(100, 0, 53) is Region.OVERLOADED


def test_zero_delta():
    assert classify_region(100, 51, 0, delta=0.0) is Region.UNDERLOADED
    assert classify_region(100, 50, 0, delta=0.0) is Region.COMFORTABLE


def test_single_running_mature_transaction():
    assert classify_region(1, 1, 0) is Region.UNDERLOADED


def test_single_blocked_mature_transaction():
    assert classify_region(1, 0, 1) is Region.OVERLOADED


def test_all_immature_is_comfortable():
    assert classify_region(10, 0, 0) is Region.COMFORTABLE


def test_default_delta_value():
    assert DEFAULT_DELTA == 0.025


def test_regions_mutually_exclusive():
    """State-1 and State-3 fractions cannot both exceed 0.525."""
    for n_active in range(1, 30):
        for s1 in range(n_active + 1):
            for s3 in range(n_active + 1 - s1):
                region = classify_region(n_active, s1, s3)
                assert isinstance(region, Region)
