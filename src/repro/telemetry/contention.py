"""Per-page contention heat and wait-for-graph statistics.

The probes show *that* the system is congested (population fractions,
queue lengths); the :class:`ContentionMonitor` shows *where*.  Hooked
into the same zero-cost-off slots as the span recorder, it maintains

* per-page counters — how often each page blocked a request
  (``conflicts``), total simulated seconds waited on it
  (``wait_seconds``), and how many waiters died on it while blocked
  (``aborts``) — the hot-page table;
* per-probe-tick wait-for-graph statistics — waiter count, waits-for
  edge count, max/mean wait-chain depth, and max/mean lock-queue depth
  over contested pages — one :class:`ContentionSample` per tick,
  exported as ``contention.jsonl``.

The monitor is strictly observational: it never touches a random
stream, never schedules an event, and reads the lock table only
through its public deterministic accessors, so a monitored run follows
exactly the same trajectory (results *and* trace) as an unmonitored
one.  When no monitor is attached the system pays one ``None`` check
per hook — and with *no* observer attached at all the PR-6 hook-free
fast dispatch still binds, unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.system import DBMSSystem
    from repro.dbms.transaction import Transaction
    from repro.telemetry.probes import ProbeSample

__all__ = ["ContentionSample", "PageHeat", "ContentionMonitor"]


class PageHeat:
    """Cumulative contention counters for one page."""

    __slots__ = ("conflicts", "wait_seconds", "aborts")

    def __init__(self) -> None:
        self.conflicts = 0
        self.wait_seconds = 0.0
        self.aborts = 0


@dataclass(frozen=True)
class ContentionSample:
    """One probe tick of lock-contention state (the contention.jsonl row).

    Graph statistics are instantaneous (the wait-for graph at the
    tick); counters prefixed ``cum_`` are cumulative since the start
    of the run.  ``mean_queue_depth`` averages over *contested* pages
    only (pages with at least one waiter), so an uncontended run
    reports 0 contested pages rather than a diluted mean.
    """

    time: float
    waiters: int
    wait_edges: int
    max_chain_depth: int
    mean_chain_depth: float
    max_queue_depth: int
    mean_queue_depth: float
    contested_pages: int
    locked_pages: int
    cum_conflicts: int
    cum_wait_seconds: float
    cum_contention_aborts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "waiters": self.waiters,
            "wait_edges": self.wait_edges,
            "max_chain_depth": self.max_chain_depth,
            "mean_chain_depth": self.mean_chain_depth,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": self.mean_queue_depth,
            "contested_pages": self.contested_pages,
            "locked_pages": self.locked_pages,
            "cum_conflicts": self.cum_conflicts,
            "cum_wait_seconds": self.cum_wait_seconds,
            "cum_contention_aborts": self.cum_contention_aborts,
        }


class ContentionMonitor:
    """Accumulates contention heat for one run.

    Attach with :meth:`attach` *before* ``system.start()`` (the hook
    slot participates in the fast-dispatch decision) and append the
    monitor to the probe scheduler's listeners to collect the per-tick
    graph statistics.  A :class:`~repro.telemetry.export
    .TelemetrySession` built with ``contention=True`` does both.
    """

    def __init__(self) -> None:
        self.system: Optional["DBMSSystem"] = None  # set by attach()
        self.pages: Dict[Any, PageHeat] = {}
        self.samples: List[ContentionSample] = []
        self.total_conflicts = 0
        self.total_wait_seconds = 0.0
        self.total_aborts_while_waiting = 0
        # txn_id -> (page, block time) for waits currently open.
        self._open_waits: Dict[int, Tuple[Any, float]] = {}

    def attach(self, system: "DBMSSystem") -> None:
        """Install on a system (sets the ``system.contention`` slot)."""
        self.system = system
        system.contention = self

    # ------------------------------------------------------------------
    # Lifecycle hooks (called from the hooked state-machine methods)
    # ------------------------------------------------------------------

    def on_block(self, txn: "Transaction", page: Any) -> None:
        heat = self.pages.get(page)
        if heat is None:
            heat = self.pages[page] = PageHeat()
        heat.conflicts += 1
        self.total_conflicts += 1
        self._open_waits[txn.txn_id] = (page, self.system.sim.now)

    def on_unblock(self, txn: "Transaction") -> None:
        open_wait = self._open_waits.pop(txn.txn_id, None)
        if open_wait is None:
            return
        page, started = open_wait
        waited = self.system.sim.now - started
        self.pages[page].wait_seconds += waited
        self.total_wait_seconds += waited

    def on_abort(self, txn: "Transaction", reason: str) -> None:
        # Only aborts of transactions that were blocked at the time are
        # charged to a page; wait-policy rejects never opened a wait.
        open_wait = self._open_waits.pop(txn.txn_id, None)
        if open_wait is None:
            return
        page, started = open_wait
        waited = self.system.sim.now - started
        heat = self.pages[page]
        heat.wait_seconds += waited
        heat.aborts += 1
        self.total_wait_seconds += waited
        self.total_aborts_while_waiting += 1

    # ------------------------------------------------------------------
    # Probe listener
    # ------------------------------------------------------------------

    def on_sample(self, sample: "ProbeSample") -> None:
        """Snapshot the wait-for graph at a probe tick (read-only)."""
        lock_table = self.system.lock_table
        waiters = lock_table.waiting_transactions()
        edges = 0
        max_chain = 0
        chain_sum = 0
        for txn in waiters:
            edges += len(lock_table.blocking_set(txn))
            depth = lock_table.wait_chain_depth(txn)
            chain_sum += depth
            if depth > max_chain:
                max_chain = depth
        max_queue = 0
        queue_sum = 0
        contested = 0
        locked_pages = lock_table.locked_pages()
        for page in locked_pages:
            depth = lock_table.num_waiters(page)
            if depth > 0:
                contested += 1
                queue_sum += depth
                if depth > max_queue:
                    max_queue = depth
        self.samples.append(ContentionSample(
            time=sample.time,
            waiters=len(waiters),
            wait_edges=edges,
            max_chain_depth=max_chain,
            mean_chain_depth=(chain_sum / len(waiters)
                              if waiters else 0.0),
            max_queue_depth=max_queue,
            mean_queue_depth=(queue_sum / contested
                              if contested else 0.0),
            contested_pages=contested,
            locked_pages=len(locked_pages),
            cum_conflicts=self.total_conflicts,
            cum_wait_seconds=self.total_wait_seconds,
            cum_contention_aborts=self.total_aborts_while_waiting,
        ))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def hot_pages(self, limit: int = 10) -> List[Dict[str, Any]]:
        """The hot-page table: most-conflicted pages first.

        Ties break on waited seconds, then on the page id, so the
        table is deterministic run to run.
        """
        ranked = sorted(
            self.pages.items(),
            key=lambda kv: (-kv[1].conflicts, -kv[1].wait_seconds,
                            str(kv[0])))
        return [{"page": page,
                 "conflicts": heat.conflicts,
                 "wait_seconds": heat.wait_seconds,
                 "aborts": heat.aborts}
                for page, heat in ranked[:limit]]

    def summary(self, hot_page_limit: int = 10) -> Dict[str, Any]:
        """The contention.json document (deterministic)."""
        return {
            "format": "repro-contention-v1",
            "conflicts": self.total_conflicts,
            "wait_seconds": self.total_wait_seconds,
            "aborts_while_waiting": self.total_aborts_while_waiting,
            "contended_pages": len(self.pages),
            "hot_pages": self.hot_pages(hot_page_limit),
        }
