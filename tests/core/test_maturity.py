"""Unit tests for the maturity rule."""

from __future__ import annotations

import pytest

from repro.core.maturity import MaturityRule
from repro.errors import ConfigurationError


def test_paper_default_25_percent():
    rule = MaturityRule()
    assert rule.fraction == 0.25
    assert rule.threshold(8) == 2
    assert rule.threshold(10) == 3     # ceil(2.5)
    assert rule.threshold(72) == 18


def test_threshold_at_least_one():
    rule = MaturityRule(fraction=0.1)
    assert rule.threshold(1) == 1
    assert rule.threshold(0) == 1      # degenerate estimate


def test_fraction_variants():
    assert MaturityRule(fraction=0.5).threshold(8) == 4
    assert MaturityRule(fraction=0.1).threshold(40) == 4
    assert MaturityRule(fraction=1.0).threshold(8) == 8


def test_cap_applies_when_smaller():
    rule = MaturityRule(fraction=0.25, cap_locks=4)
    assert rule.threshold(8) == 2      # 25% = 2 < cap
    assert rule.threshold(40) == 4     # 25% = 10, capped at 4
    assert rule.threshold(400) == 4


def test_cap_never_below_one():
    rule = MaturityRule(fraction=0.25, cap_locks=1)
    assert rule.threshold(100) == 1


def test_invalid_fraction_rejected():
    with pytest.raises(ConfigurationError):
        MaturityRule(fraction=0.0)
    with pytest.raises(ConfigurationError):
        MaturityRule(fraction=1.5)
    with pytest.raises(ConfigurationError):
        MaturityRule(fraction=-0.25)


def test_invalid_cap_rejected():
    with pytest.raises(ConfigurationError):
        MaturityRule(cap_locks=0)


def test_describe():
    assert "25%" in MaturityRule().describe()
    capped = MaturityRule(cap_locks=6).describe()
    assert "6" in capped and "min" in capped
