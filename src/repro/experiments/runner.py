"""Simulation runner: warmup, batch-means measurement, result assembly.

:func:`run_simulation` is the single entry point every experiment,
example, and benchmark uses.  It builds a fresh system, runs the warmup
period, then snapshots the collector at every batch boundary and reduces
the snapshots to a :class:`SimulationResults`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from repro.control.base import LoadController
from repro.core.maturity import MaturityRule
from repro.dbms.config import SimulationParameters
from repro.dbms.system import DBMSSystem
from repro.lockmgr.wait_policy import WaitPolicy
from repro.metrics.collector import Collector
from repro.metrics.results import SimulationResults, build_results
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.base import WorkloadGenerator

__all__ = ["run_simulation", "WorkloadFactory", "ControllerFactory"]

# A workload factory receives the run's random streams and parameters and
# returns a fresh generator (generators are stateful, so each run needs
# its own instance).
WorkloadFactory = Callable[[RandomStreams, SimulationParameters],
                           WorkloadGenerator]
ControllerFactory = Callable[[], LoadController]


def run_simulation(params: SimulationParameters,
                   controller: LoadController,
                   workload_factory: Optional[WorkloadFactory] = None,
                   wait_policy: Optional[WaitPolicy] = None,
                   maturity_rule: Optional[MaturityRule] = None,
                   tracer=None,
                   admission_order=None,
                   deadlock_strategy=None,
                   telemetry=None,
                   fault_schedule=None,
                   profiler=None,
                   verify=None,
                   sim: Optional[Simulator] = None,
                   ) -> SimulationResults:
    """Run one complete simulation and return its measured results.

    Args:
        params: all model parameters, including the measurement window.
        controller: a *fresh* load-controller instance (controllers hold
            per-run state and must not be reused across runs).
        workload_factory: optional; defaults to the homogeneous workload
            described by ``params``.
        wait_policy: optional lock-wait policy (default: unbounded 2PL).
        maturity_rule: maturity definition for state tracking (default:
            the paper's 25% rule).
        tracer: optional :class:`repro.metrics.trace.Tracer` recording
            per-transaction lifecycle events.
        telemetry: optional
            :class:`repro.telemetry.TelemetrySession`; installs the
            full observability stack (tracer, probe scheduler, decision
            log, event-loop profiler) and exports JSONL + manifest into
            the session's directory when the run completes.  Mutually
            exclusive with ``tracer`` (the session brings its own).
        fault_schedule: optional
            :class:`repro.faultinject.FaultSchedule`; its disturbance
            windows are installed on the simulation calendar before the
            system starts, so the run is disturbed deterministically.
        profiler: optional
            :class:`repro.telemetry.EngineProfiler` attached to the
            event loop (the bench harness measures events/sec with
            one).  Mutually exclusive with ``telemetry``, which brings
            its own.
        sim: optional pre-built :class:`repro.sim.engine.Simulator` to
            run on.  Callers that need kernel-level counters afterwards
            (e.g. the bench harness reading ``sim.events_executed``)
            pass their own; everyone else lets the runner build one.
        verify: optional :class:`repro.verify.VerifyConfig`; installs
            the runtime :class:`repro.verify.InvariantChecker` (and,
            unless disabled, swaps the lock table for a
            :class:`repro.verify.ShadowLockTable` diffed against the
            naive reference on every operation).  Verification is
            strictly observational — a verified run produces bit-for-bit
            the same results as an unverified one, or raises.

    Returns:
        A :class:`SimulationResults` with batch-means statistics over the
        post-warmup window.
    """
    if telemetry is not None and tracer is not None:
        raise ValueError(
            "pass either telemetry= or tracer=, not both: a telemetry "
            "session installs its own tracer")
    if telemetry is not None and profiler is not None:
        raise ValueError(
            "pass either telemetry= or profiler=, not both: a telemetry "
            "session installs its own profiler")
    wall_start = perf_counter()
    if sim is None:
        sim = Simulator()
    streams = RandomStreams(params.seed)
    collector = Collector()
    workload = (workload_factory(streams, params)
                if workload_factory is not None else None)
    system = DBMSSystem(params=params, controller=controller,
                        workload=workload, wait_policy=wait_policy,
                        maturity_rule=maturity_rule,
                        collector=collector, sim=sim, streams=streams,
                        tracer=tracer, admission_order=admission_order,
                        **({"deadlock_strategy": deadlock_strategy}
                           if deadlock_strategy is not None else {}))
    if telemetry is not None:
        telemetry.install(system)
    if profiler is not None:
        sim.profiler = profiler
    if fault_schedule is not None:
        fault_schedule.install(system)
    if verify is not None:
        # Imported lazily: repro.verify.golden drives this runner, so a
        # top-level import would be circular — and unverified runs never
        # pay the import.
        from repro.verify.invariants import InvariantChecker
        from repro.verify.shadow import ShadowLockTable
        if verify.shadow_lock_table:
            # Swap before start(): no lock activity has happened yet,
            # and every later access goes through system.lock_table.
            system.lock_table = ShadowLockTable()
        InvariantChecker(verify).attach(system)
    system.start()

    # Phase marks for the attribution profiler (duck-typed: the plain
    # EngineProfiler has no set_phase and most runs have no profiler at
    # all — one getattr per run, nothing per event).
    set_phase = getattr(sim.profiler, "set_phase", None)
    if set_phase is not None:
        set_phase("warmup")
    sim.run(until=params.warmup_time)
    snapshots = [collector.snapshot(sim.now)]
    aborts_at_start = collector.aborts
    reasons_at_start = dict(collector.aborts_by_reason)
    if set_phase is not None:
        set_phase("measure")
    for batch in range(1, params.num_batches + 1):
        sim.run(until=params.warmup_time + batch * params.batch_time)
        snapshots.append(collector.snapshot(sim.now))

    window_reasons = {
        reason: count - reasons_at_start.get(reason, 0)
        for reason, count in collector.aborts_by_reason.items()
    }
    results = build_results(
        snapshots=snapshots,
        controller_name=system.controller.name,
        workload_name=system.workload.name,
        commits=collector.commits,
        aborts=collector.aborts - aborts_at_start,
        aborts_by_reason=window_reasons,
        response_time_sum=collector.response_time_sum,
        restarts_of_committed=collector.restarts_of_committed,
        max_mpl=collector.active.max_value,
        per_class=collector.per_class,
    )
    if telemetry is not None:
        telemetry.finalize(
            params=params,
            controller_name=system.controller.name,
            workload_name=system.workload.name,
            sim_time=sim.now,
            wall_time=perf_counter() - wall_start,
        )
    return results
