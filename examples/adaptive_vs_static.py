#!/usr/bin/env python3
"""Adaptive vs static admission control on a drifting workload.

Models the paper's Section 4.4 scenario: a system whose transaction mix
changes over time (think mid-morning OLTP vs overnight batch reports).
A fixed MPL tuned for one phase loses in the other; the Half-and-Half
controller retunes itself and — on slowly varying workloads — beats
*every* fixed setting.

Run:  python examples/adaptive_vs_static.py
"""

from repro import (
    FixedMPLController,
    HalfAndHalfController,
    SimulationParameters,
    run_simulation,
)
from repro.workload.time_varying import TimeVaryingWorkload


def varying_workload(streams, params):
    """Alternate bursts of large transactions with small-transaction
    phases (long-run mean size 8, like the base case)."""
    return TimeVaryingWorkload(streams, params.db_size,
                               phase1_lengths=(300, 600, 900),
                               write_prob=params.write_prob)


def main() -> None:
    params = SimulationParameters(
        num_terms=200, warmup_time=30.0,
        num_batches=4, batch_time=60.0)

    print("Workload: transaction size alternates between a random phase")
    print("(mean 4-72 pages) and a compensating 4-page phase; long-run")
    print("mean is 8 pages.  200 terminals, base-case hardware.\n")

    rows = []
    for mpl in (5, 10, 20, 35, 60, 120):
        r = run_simulation(params, FixedMPLController(mpl),
                           workload_factory=varying_workload)
        rows.append((f"fixed MPL {mpl}", r))

    hh = run_simulation(params, HalfAndHalfController(),
                        workload_factory=varying_workload)
    rows.append(("Half-and-Half", hh))

    best_fixed = max(rows[:-1], key=lambda kv: kv[1].page_throughput.mean)

    print(f"{'controller':<16} {'thruput':>9} {'avg MPL':>8} {'aborts':>7}")
    print("-" * 44)
    for name, r in rows:
        marker = ""
        if name == best_fixed[0]:
            marker = "  <- best fixed"
        if name == "Half-and-Half":
            marker = "  <- adaptive"
        print(f"{name:<16} {r.page_throughput.mean:>9.1f} "
              f"{r.avg_mpl:>8.1f} {r.aborts:>7}{marker}")

    edge = (hh.page_throughput.mean
            / best_fixed[1].page_throughput.mean - 1.0) * 100.0
    print(f"\nHalf-and-Half vs the best fixed MPL: {edge:+.1f}%")
    print("No single static level suits both phases; the adaptive")
    print("controller tracks the phase currently in effect.")


if __name__ == "__main__":
    main()
