"""Benchmark-suite configuration.

Every benchmark regenerates one paper figure at the scale selected by
the ``REPRO_SCALE`` environment variable (default ``bench``; set
``REPRO_SCALE=paper`` for publication-grade windows, ``smoke`` for a
fast sanity pass), prints the figure's data table, and asserts the
qualitative shape the paper reports.

Benchmarks run exactly once (``pedantic`` with one round): a figure is
a deterministic simulation sweep, so repeated timing rounds would only
waste hours.
"""

from __future__ import annotations

import pytest

from repro.experiments.scales import scale_from_env


@pytest.fixture(scope="session")
def scale():
    return scale_from_env(default="bench")


@pytest.fixture
def run_figure(benchmark, scale):
    """Run a figure spec once under pytest-benchmark and print it."""

    def runner(spec):
        result = benchmark.pedantic(
            spec.run, args=(scale,), rounds=1, iterations=1)
        print()
        print(result.as_table())
        print(f"paper claim: {spec.paper_claim}")
        return result

    return runner
