"""Per-site fault windows on the distributed system."""

from __future__ import annotations

import pytest

from repro.distributed.config import DistributedParameters
from repro.distributed.controllers import make_no_control_sites
from repro.distributed.runner import run_distributed_simulation
from repro.distributed.system import DistributedSystem
from repro.errors import ExperimentError
from repro.faultinject.system import (
    FaultSchedule,
    FaultWindow,
    SystemFaultKind,
)


def _params(**overrides):
    defaults = dict(num_sites=3, num_terms=30, db_size=300,
                    warmup_time=3.0, num_batches=2, batch_time=8.0)
    defaults.update(overrides)
    return DistributedParameters(**defaults)


def _window(site=None, severity=4.0):
    return FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN,
                       start=5.0, duration=8.0, severity=severity,
                       site=site)


def test_site_window_degrades_only_that_site():
    clean = run_distributed_simulation(_params(), make_no_control_sites(3))
    faulted = run_distributed_simulation(
        _params(), make_no_control_sites(3),
        fault_schedule=FaultSchedule(windows=(_window(site=0),)))
    assert (faulted.per_class["site0"].commits
            < clean.per_class["site0"].commits)
    assert faulted.commits < clean.commits


def test_cluster_window_hits_every_site():
    clean = run_distributed_simulation(_params(), make_no_control_sites(3))
    faulted = run_distributed_simulation(
        _params(), make_no_control_sites(3),
        fault_schedule=FaultSchedule(windows=(_window(site=None),)))
    for site in range(3):
        assert (faulted.per_class[f"site{site}"].commits
                < clean.per_class[f"site{site}"].commits)


def test_service_scale_restored_after_window():
    system = DistributedSystem(params=_params(),
                               controllers=make_no_control_sites(3))
    FaultSchedule(windows=(_window(site=1),)).install(system)
    system.start()
    system.sim.run(until=system.params.total_time)
    for site in system.sites:
        assert site.disks.service_scale == 1.0
        assert site.cpu.service_scale == 1.0


def test_site_window_rejected_on_single_site_system():
    from repro.control.no_control import NoControlController
    from repro.dbms.config import SimulationParameters
    from repro.experiments.runner import run_simulation

    params = SimulationParameters(num_terms=10, db_size=300,
                                  warmup_time=1.0, num_batches=1,
                                  batch_time=2.0)
    with pytest.raises(ExperimentError, match="single-site"):
        run_simulation(params, NoControlController(),
                       fault_schedule=FaultSchedule(
                           windows=(_window(site=0),)))


def test_site_window_rejected_when_out_of_range():
    system = DistributedSystem(params=_params(),
                               controllers=make_no_control_sites(3))
    with pytest.raises(ExperimentError, match="site 7"):
        FaultSchedule(windows=(_window(site=7),)).install(system)


def test_str_marks_the_target_site():
    assert str(_window(site=2)).startswith("site2:")
    assert not str(_window(site=None)).startswith("site")
