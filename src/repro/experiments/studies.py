"""Shared multi-figure studies, cached per scale.

Several paper figures are different views of one underlying sweep
(Figures 8–10 and 16–17 all come from the transaction-size study).  The
studies here run the sweep once per scale and memoize it so figure
modules and benchmarks don't repeat hours of simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.control.fixed_mpl import FixedMPLController
from repro.control.tay import TayRuleController
from repro.core.half_and_half import HalfAndHalfController
from repro.dbms.config import SimulationParameters
from repro.experiments.runner import run_simulation
from repro.experiments.scales import Scale
from repro.experiments.sweeps import default_mpl_candidates, find_optimal_mpl
from repro.metrics.results import SimulationResults

__all__ = [
    "base_params",
    "terminal_sweep_points",
    "txn_size_points",
    "TxnSizeStudy",
    "txn_size_study",
]

# Fixed MPL reference lines used across the transaction-size figures:
# 35 is the base case optimum; 20 "chosen simply as another example".
REFERENCE_MPLS = (35, 20)


def base_params(scale: Scale, **overrides) -> SimulationParameters:
    """Table 2 base parameters at the given measurement scale."""
    params = SimulationParameters(**overrides)
    return scale.apply(params)


def terminal_sweep_points(scale: Scale) -> List[int]:
    """#terminals grid for the Figure 1/3/7/18/22-style sweeps."""
    fine = [5, 10, 15, 20, 25, 30, 35, 40, 50, 60, 75,
            100, 125, 150, 175, 200]
    coarse = [5, 15, 25, 35, 50, 75, 100, 150, 200]
    return scale.pick(fine, coarse)


def txn_size_points(scale: Scale) -> List[int]:
    """Mean transaction sizes for the Figure 8–10/16–17/21 sweeps."""
    fine = [4, 8, 12, 16, 24, 32, 40, 48, 56, 64, 72]
    coarse = [4, 8, 16, 32, 48, 72]
    return scale.pick(fine, coarse)


@dataclass
class TxnSizeStudy:
    """All runs of the transaction-size sweep (Figures 8–10, 16–17)."""

    sizes: List[int]
    half_and_half: Dict[int, SimulationResults]
    fixed: Dict[Tuple[int, int], SimulationResults]   # (mpl, size) -> result
    optimal_mpl: Dict[int, int]                       # size -> best MPL
    optimal: Dict[int, SimulationResults]             # size -> best result
    tay: Dict[int, SimulationResults]
    tay_mpl: Dict[int, int]


_STUDY_CACHE: Dict[str, TxnSizeStudy] = {}


def txn_size_study(scale: Scale) -> TxnSizeStudy:
    """Run (or fetch) the transaction-size sweep at this scale.

    200 terminals, base parameters, mean size varying from 4 to 72 pages;
    curves for Half-and-Half, the two reference fixed MPLs, the searched
    optimal MPL, and Tay's rule.
    """
    cached = _STUDY_CACHE.get(scale.name)
    if cached is not None:
        return cached

    sizes = txn_size_points(scale)
    hh: Dict[int, SimulationResults] = {}
    fixed: Dict[Tuple[int, int], SimulationResults] = {}
    opt_mpl: Dict[int, int] = {}
    opt: Dict[int, SimulationResults] = {}
    tay: Dict[int, SimulationResults] = {}
    tay_mpls: Dict[int, int] = {}

    for size in sizes:
        params = base_params(scale, tran_size=size)
        hh[size] = run_simulation(params, HalfAndHalfController())
        for mpl in REFERENCE_MPLS:
            fixed[(mpl, size)] = run_simulation(
                params, FixedMPLController(mpl))
        candidates = default_mpl_candidates(params.num_terms,
                                            dense=scale.dense)
        best, by_mpl = find_optimal_mpl(params, candidates)
        opt_mpl[size] = best
        opt[size] = by_mpl[best]
        controller = TayRuleController.from_params(params)
        tay_mpls[size] = controller.mpl
        tay[size] = run_simulation(params, controller)

    study = TxnSizeStudy(sizes=sizes, half_and_half=hh, fixed=fixed,
                         optimal_mpl=opt_mpl, optimal=opt,
                         tay=tay, tay_mpl=tay_mpls)
    _STUDY_CACHE[scale.name] = study
    return study
