"""Experiment harness: runner, parallel executor, sweeps, figures."""

from repro.experiments.parallel import (
    ResultCache,
    RunSpec,
    execution_context,
    run_specs,
)
from repro.experiments.runner import run_simulation

__all__ = ["run_simulation", "RunSpec", "ResultCache",
           "execution_context", "run_specs"]
