"""Figure-experiment framework.

Every paper figure is reproduced by a module exposing a module-level
``FIGURE`` — a :class:`FigureSpec` naming the experiment and binding a
``run(scale) -> FigureResult`` function.  Results are plain data: an
x-axis plus named series, renderable as an aligned text table (the same
rows/series the paper plots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.scales import Scale
from repro.metrics.results import SimulationResults

__all__ = ["FigureResult", "FigureSpec", "RunSpec", "simulate_specs"]


def simulate_specs(specs: Sequence[RunSpec],
                   label: str = "figure") -> List[SimulationResults]:
    """Run a figure's batch of simulations through the execution layer.

    Thin wrapper over :func:`repro.experiments.parallel.run_specs`: the
    ambient :class:`~repro.experiments.parallel.ExecutionContext` decides
    the worker count and result cache, so figure modules only describe
    *what* to run.  Results come back in spec order, bit-identical for
    any ``--jobs`` value.
    """
    return run_specs(specs, label=label)


@dataclass
class FigureResult:
    """The data behind one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    series: Dict[str, List[Optional[float]]]
    notes: str = ""
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, ys in self.series.items():
            if len(ys) != len(self.x_values):
                raise ExperimentError(
                    f"{self.figure_id}: series {name!r} has "
                    f"{len(ys)} points for {len(self.x_values)} x values")

    def get(self, series_name: str) -> List[Optional[float]]:
        """One series' y values, in x order."""
        try:
            return self.series[series_name]
        except KeyError:
            raise ExperimentError(
                f"{self.figure_id}: no series {series_name!r}; "
                f"have {sorted(self.series)}") from None

    def as_table(self) -> str:
        """Render as an aligned text table (x column + one per series)."""
        headers = [self.x_label] + list(self.series)
        rows: List[List[str]] = []
        for i, x in enumerate(self.x_values):
            row = [_fmt(x)]
            for name in self.series:
                row.append(_fmt(self.series[name][i]))
            rows.append(row)
        widths = [max(len(h), *(len(r[c]) for r in rows)) if rows else len(h)
                  for c, h in enumerate(headers)]
        lines = [f"{self.figure_id}: {self.title}   [{self.y_label}]"]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return f"{value:g}" if isinstance(value, float) else str(value)


@dataclass(frozen=True)
class FigureSpec:
    """Metadata and entry point for one reproduced figure."""

    figure_id: str            # e.g. "fig07"
    title: str
    paper_claim: str          # the qualitative shape the paper reports
    run: Callable[[Scale], FigureResult]
    tags: Sequence[str] = ()
