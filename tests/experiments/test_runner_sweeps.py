"""Tests for the simulation runner and sweep helpers."""

from __future__ import annotations

import pytest

from repro.control.fixed_mpl import FixedMPLController
from repro.control.no_control import NoControlController
from repro.errors import ExperimentError
from repro.experiments.runner import run_simulation
from repro.experiments.sweeps import (
    default_mpl_candidates,
    find_optimal_mpl,
    sweep_fixed_mpl,
)
from repro.workload.mixed import MixedWorkload, paper_mixed_classes


def test_run_simulation_produces_complete_results(fast_params):
    r = run_simulation(fast_params, NoControlController())
    assert r.page_throughput.mean > 0
    assert r.raw_page_rate.mean >= r.page_throughput.mean
    assert r.page_throughput.num_batches == fast_params.num_batches
    assert len(r.batch_throughputs) == fast_params.num_batches
    assert r.measurement_time == pytest.approx(
        fast_params.measurement_time)
    assert r.controller_name == "NoControl"
    assert "Homogeneous" in r.workload_name
    assert 0 < r.avg_mpl <= fast_params.num_terms
    assert r.avg_response_time > 0


def test_run_simulation_with_workload_factory(fast_params):
    def factory(streams, params):
        return MixedWorkload(streams, params.db_size,
                             paper_mixed_classes())

    params = fast_params.replace(num_terms=200)
    r = run_simulation(params, NoControlController(),
                       workload_factory=factory)
    assert "Mixed" in r.workload_name
    assert r.commits > 0


def test_default_mpl_candidates_bounded():
    assert all(m <= 50 for m in default_mpl_candidates(50))
    assert default_mpl_candidates(1) == [1]
    dense = default_mpl_candidates(200, dense=True)
    coarse = default_mpl_candidates(200, dense=False)
    assert len(dense) > len(coarse)
    assert all(isinstance(m, int) and m >= 1 for m in dense)


def test_sweep_fixed_mpl_runs_each_candidate(tiny_params):
    results = sweep_fixed_mpl(tiny_params, [2, 5])
    assert set(results) == {2, 5}
    assert all(r.page_throughput.mean > 0 for r in results.values())


def test_sweep_empty_candidates_rejected(tiny_params):
    with pytest.raises(ExperimentError):
        sweep_fixed_mpl(tiny_params, [])


def test_find_optimal_mpl_returns_member(tiny_params):
    best, results = find_optimal_mpl(tiny_params, [1, 3, 8])
    assert best in (1, 3, 8)
    assert results[best].page_throughput.mean == max(
        r.page_throughput.mean for r in results.values())
