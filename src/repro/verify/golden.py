"""Golden-run manifests: end-to-end regression pinning for the simulator.

A golden manifest records, for every pinned benchmark configuration
(:mod:`repro.bench.suite`, smoke scale), a sha256 over the canonical
JSON of the run's results and a second sha256 over the full lifecycle
trace, plus the raw commit/abort counts for human-readable diffs.  The
simulator is deterministic for a given seed, so these hashes are stable
across machines and Python versions — any change means the simulated
*trajectory* changed, which is either an intentional semantic change
(regenerate with ``repro-experiments verify golden --update``) or a
regression (fix it).

The manifest lives at ``tests/goldens/golden_runs.json`` and is checked
by the tier-1 test suite and by the CI ``verify-smoke`` job.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.suite import BenchEntry, suite_for
from repro.control.analytic import AnalyticMPCController
from repro.control.malthusian import MalthusianController
from repro.dbms.config import SimulationParameters
from repro.experiments.export import results_to_dict
from repro.experiments.runner import run_simulation
from repro.metrics.trace import Tracer
from repro.telemetry.export import trace_event_to_dict

__all__ = ["GOLDEN_SCALE", "MANIFEST_FORMAT", "default_golden_path",
           "compute_golden_manifest", "load_golden_manifest",
           "compare_manifests", "check_goldens", "update_goldens",
           "extra_golden_entries"]

PathLike = Union[str, Path]

# Bench scale the goldens pin.  Smoke is deliberate: seconds per entry,
# yet a trajectory change anywhere upstream still flips the hashes.
GOLDEN_SCALE = "smoke"

# Bump when the manifest layout (not the simulation) changes.
MANIFEST_FORMAT = 1


def default_golden_path() -> Path:
    """``tests/goldens/golden_runs.json`` relative to the repo root."""
    return (Path(__file__).resolve().parents[3]
            / "tests" / "goldens" / "golden_runs.json")


def _canonical_sha256(payload) -> str:
    encoded = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def extra_golden_entries(scale: str = GOLDEN_SCALE) -> List[BenchEntry]:
    """Golden-only pinned configurations, beyond the bench suite.

    The bench suite is a schema (BENCH_*.json comparisons key on its
    entries), so configurations that exist to pin *trajectories* rather
    than wall clock live here: one Malthusian run hot enough to drive
    passivation/readmission churn, and one analytic-MPC run with
    several refit epochs.
    """
    from repro.bench.suite import SCALES
    overrides = SCALES[scale]
    contended = SimulationParameters(num_terms=100, db_size=300,
                                     write_prob=0.5, **overrides)
    return [
        BenchEntry("malthusian_hot", contended, MalthusianController),
        BenchEntry("analytic_mpc_hot", contended, AnalyticMPCController),
    ]


def compute_golden_manifest(scale: str = GOLDEN_SCALE) -> Dict:
    """Run every pinned bench entry and hash its results and trace."""
    entries = {}
    for entry in (*suite_for(scale), *extra_golden_entries(scale)):
        tracer = Tracer(capacity=None)
        results = run_simulation(entry.params, entry.make_controller(),
                                 tracer=tracer)
        result_dict = results_to_dict(results)
        trace_dicts = [trace_event_to_dict(e) for e in tracer]
        entries[entry.name] = {
            "results_sha256": _canonical_sha256(result_dict),
            "trace_sha256": _canonical_sha256(trace_dicts),
            "trace_events": len(trace_dicts),
            "commits": result_dict["commits"],
            "aborts": result_dict["aborts"],
        }
    return {
        "format": MANIFEST_FORMAT,
        "scale": scale,
        "entries": entries,
    }


def load_golden_manifest(path: Optional[PathLike] = None) -> Dict:
    path = Path(path) if path is not None else default_golden_path()
    return json.loads(path.read_text())


def compare_manifests(expected: Dict, actual: Dict) -> List[str]:
    """Human-readable mismatches between two manifests (empty = match)."""
    problems: List[str] = []
    if expected.get("format") != actual.get("format"):
        problems.append(
            f"manifest format {actual.get('format')} != expected "
            f"{expected.get('format')} (regenerate with --update)")
        return problems
    if expected.get("scale") != actual.get("scale"):
        problems.append(
            f"manifest scale {actual.get('scale')!r} != expected "
            f"{expected.get('scale')!r}")
    exp_entries = expected.get("entries", {})
    act_entries = actual.get("entries", {})
    for name in sorted(set(exp_entries) | set(act_entries)):
        exp = exp_entries.get(name)
        act = act_entries.get(name)
        if exp is None:
            problems.append(f"{name}: not in the golden manifest")
            continue
        if act is None:
            problems.append(f"{name}: pinned in the manifest but the "
                            f"bench suite no longer defines it")
            continue
        for key in ("results_sha256", "trace_sha256"):
            if exp.get(key) != act.get(key):
                problems.append(
                    f"{name}: {key} changed "
                    f"(expected {exp.get(key)}, got {act.get(key)}; "
                    f"commits {exp.get('commits')} -> "
                    f"{act.get('commits')}, aborts {exp.get('aborts')} "
                    f"-> {act.get('aborts')})")
    return problems


def check_goldens(path: Optional[PathLike] = None) -> List[str]:
    """Re-run the pinned configurations and diff against the manifest.

    Returns mismatch descriptions; an empty list means every golden
    still reproduces bit-for-bit.
    """
    expected = load_golden_manifest(path)
    actual = compute_golden_manifest(expected.get("scale", GOLDEN_SCALE))
    return compare_manifests(expected, actual)


def update_goldens(path: Optional[PathLike] = None) -> Path:
    """Regenerate the manifest in place and return its path."""
    path = Path(path) if path is not None else default_golden_path()
    manifest = compute_golden_manifest()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                    + "\n")
    return path
