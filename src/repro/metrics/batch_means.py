"""Batch-means confidence intervals (paper Section 4.1).

"We employed a modified form of the batch means method [Sarg76] ...  Each
simulation was run for 20 batches with a large batch time to produce
sufficiently tight 90% confidence intervals."

The *modified* batch-means method discards an initial-transient batch
(here: explicit warmup handled by the runner) and treats the per-batch
means as approximately independent observations; the confidence interval
uses the Student-t distribution on n−1 degrees of freedom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError

__all__ = ["BatchStatistics", "student_t_quantile", "summarize_batches"]

# Two-sided Student-t critical values t_{df, 0.95} (for a 90% CI).
# Exact tables for small df; the normal quantile asymptote beyond.
_T_95 = {
    1: 6.3138, 2: 2.9200, 3: 2.3534, 4: 2.1318, 5: 2.0150,
    6: 1.9432, 7: 1.8946, 8: 1.8595, 9: 1.8331, 10: 1.8125,
    11: 1.7959, 12: 1.7823, 13: 1.7709, 14: 1.7613, 15: 1.7531,
    16: 1.7459, 17: 1.7396, 18: 1.7341, 19: 1.7291, 20: 1.7247,
    21: 1.7207, 22: 1.7171, 23: 1.7139, 24: 1.7109, 25: 1.7081,
    26: 1.7056, 27: 1.7033, 28: 1.7011, 29: 1.6991, 30: 1.6973,
    40: 1.6839, 50: 1.6759, 60: 1.6706, 80: 1.6641, 100: 1.6602,
    120: 1.6577,
}
_Z_95 = 1.6449


def student_t_quantile(df: int, confidence: float = 0.90) -> float:
    """t critical value for a two-sided CI at the given confidence.

    Only the paper's 90% level is tabulated exactly; other levels fall
    back to a normal approximation scaled by the 90% table ratio, which
    keeps the function total without a scipy dependency in the hot path.
    """
    if df < 1:
        raise ReproError(f"degrees of freedom must be >= 1, got {df}")
    if abs(confidence - 0.90) > 1e-9:
        # Lazy import: scipy is an allowed dependency, but only this
        # uncommon path needs it.
        from scipy import stats
        return float(stats.t.ppf(0.5 + confidence / 2.0, df))
    if df in _T_95:
        return _T_95[df]
    if df > 120:
        return _Z_95
    # Interpolate between tabulated entries.
    lower = max(k for k in _T_95 if k <= df)
    upper = min(k for k in _T_95 if k >= df)
    if lower == upper:
        return _T_95[lower]
    frac = (df - lower) / (upper - lower)
    return _T_95[lower] + frac * (_T_95[upper] - _T_95[lower])


@dataclass(frozen=True)
class BatchStatistics:
    """Summary of one metric over the measurement batches."""

    mean: float
    std_dev: float
    half_width: float        # half-width of the confidence interval
    confidence: float
    num_batches: int

    @property
    def ci_low(self) -> float:
        return self.mean - self.half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (0 for a zero mean)."""
        if self.mean == 0.0:
            return 0.0
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return (f"{self.mean:.2f} ± {self.half_width:.2f} "
                f"({self.confidence:.0%} CI, n={self.num_batches})")


def summarize_batches(values: Sequence[float],
                      confidence: float = 0.90) -> BatchStatistics:
    """Mean and Student-t confidence interval of per-batch observations."""
    n = len(values)
    if n == 0:
        raise ReproError("cannot summarize zero batches")
    mean = sum(values) / n
    if n == 1:
        return BatchStatistics(mean=mean, std_dev=0.0, half_width=0.0,
                               confidence=confidence, num_batches=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std_dev = math.sqrt(variance)
    t = student_t_quantile(n - 1, confidence)
    half_width = t * std_dev / math.sqrt(n)
    return BatchStatistics(mean=mean, std_dev=std_dev,
                           half_width=half_width,
                           confidence=confidence, num_batches=n)
