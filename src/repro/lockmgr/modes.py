"""Lock modes and the compatibility matrix.

The paper models page-level locking with the two classic modes: shared (S)
for reads and exclusive (X) for writes.  "Shared locks are compatible with
one another, but an exclusive lock on an object is incompatible with other
shared and exclusive locks on the object."
"""

from __future__ import annotations

import enum

__all__ = ["LockMode", "compatible"]


class LockMode(enum.IntEnum):
    """Page lock modes."""

    S = 0   # shared (read)
    X = 1   # exclusive (write)


def compatible(held: LockMode, requested: LockMode) -> bool:
    """True if a lock in ``requested`` mode can coexist with ``held``.

    Only S/S is compatible; every combination involving X conflicts.
    """
    return held is LockMode.S and requested is LockMode.S
