"""Sweep rollup: per-run summaries, knee detection, determinism."""

from __future__ import annotations

import json
from functools import partial

import pytest

from repro.control.fixed_mpl import FixedMPLController
from repro.core.half_and_half import HalfAndHalfController
from repro.errors import ExperimentError
from repro.experiments.parallel import RunSpec, run_specs
from repro.telemetry import (TelemetryConfig, find_knee,
                             render_sweep_report, summarize_sweep,
                             validate_sweep_summary, write_sweep_summary)


# ----------------------------------------------------------------------
# find_knee (pure function)
# ----------------------------------------------------------------------

def test_find_knee_confirms_a_clear_peak():
    # Classic thrashing curve: rises to a peak, then collapses.
    points = [(5, 10.0), (10, 20.0), (15, 25.0), (20, 12.0), (25, 6.0)]
    knee = find_knee(points)
    assert knee == {"mpl": 15, "throughput": 25.0,
                    "confirmed": True, "detected_at_mpl": 20}


def test_find_knee_monotone_rise_is_unconfirmed_argmax():
    points = [(5, 10.0), (10, 20.0), (15, 30.0)]
    knee = find_knee(points)
    assert knee["mpl"] == 15 and knee["throughput"] == 30.0
    assert knee["confirmed"] is False
    assert knee["detected_at_mpl"] is None


def test_find_knee_shallow_noise_never_confirms():
    # Post-peak wobble inside the slack band is not a decline.
    points = [(5, 100.0), (10, 98.0), (15, 97.0), (20, 99.0)]
    knee = find_knee(points)
    assert knee["confirmed"] is False
    assert knee["mpl"] == 5


def test_find_knee_later_peak_resets_the_decline():
    # A shallow dip followed by a higher peak must not count toward
    # the decline confirmed after the real (second) peak.
    points = [(5, 10.0), (10, 8.5), (15, 20.0), (20, 8.0)]
    knee = find_knee(points)
    assert knee["mpl"] == 15
    assert knee["confirmed"] is True


def test_find_knee_degenerate_inputs():
    assert find_knee([]) is None
    assert find_knee([(5, 10.0)]) is None
    assert find_knee([(5, None), (10, None)]) is None
    # None throughputs (cache hits without probes) are skipped.
    knee = find_knee([(5, 10.0), (10, None), (15, 2.0)])
    assert knee["mpl"] == 5


# ----------------------------------------------------------------------
# End-to-end over real telemetry runs
# ----------------------------------------------------------------------

@pytest.fixture
def sweep_root(tiny_params, tmp_path):
    """Two runs at different MPLs: one curve with two points."""
    specs = [
        RunSpec(params=tiny_params.replace(num_terms=5),
                controller_factory=HalfAndHalfController),
        RunSpec(params=tiny_params.replace(num_terms=10),
                controller_factory=HalfAndHalfController),
    ]
    run_specs(specs, telemetry=TelemetryConfig(
        root=str(tmp_path / "sweep"), contention=True, online=True))
    return tmp_path / "sweep"


def test_summarize_sweep_builds_runs_and_curves(sweep_root):
    summary = summarize_sweep(sweep_root)
    assert summary["format"] == "repro-sweep-summary-v1"
    assert len(summary["runs"]) == 2
    for run in summary["runs"]:
        assert run["throughput"] > 0.0
        assert run["page_throughput"] > 0.0
        assert run["final_regime"] is not None
    (curve,) = summary["curves"]
    assert [p["mpl"] for p in curve["points"]] == [5, 10]
    assert summary["hot_pages"]


def test_sweep_summary_serial_and_jobs_byte_identical(sweep_root):
    serial = write_sweep_summary(sweep_root, jobs=1,
                                 out=sweep_root / "serial.json")
    pooled = write_sweep_summary(sweep_root, jobs=2,
                                 out=sweep_root / "pooled.json")
    assert serial.read_bytes() == pooled.read_bytes()


def test_sweep_summary_validates_and_renders(sweep_root):
    path = write_sweep_summary(sweep_root)
    assert path == sweep_root / "sweep_summary.json"
    assert validate_sweep_summary(path) == []
    summary = json.loads(path.read_text())
    report = render_sweep_report(summary)
    assert "curve" in report
    assert "knee" in report
    assert "onsets (per run)" in report
    assert "hottest pages" in report


def test_summarize_sweep_rejects_bad_roots(tmp_path):
    with pytest.raises(ExperimentError):
        summarize_sweep(tmp_path / "missing")
    with pytest.raises(ExperimentError):
        summarize_sweep(tmp_path)  # exists, holds no runs


def test_summarize_sweep_skips_cache_hits_in_curves(tiny_params, tmp_path):
    specs = [RunSpec(params=tiny_params,
                     controller_factory=partial(FixedMPLController, 4))]
    run_specs(specs, cache=tmp_path / "cache")  # populate the cache
    run_specs(specs, cache=tmp_path / "cache", telemetry=tmp_path / "tel")
    summary = summarize_sweep(tmp_path / "tel")
    (run,) = summary["runs"]
    assert run["cache_hit"] is True
    assert summary["curves"] == []  # cache hits carry no probe series
