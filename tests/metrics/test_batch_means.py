"""Unit tests for batch-means statistics."""

from __future__ import annotations

import pytest
from scipy import stats as scipy_stats

from repro.errors import ReproError
from repro.metrics.batch_means import (
    BatchStatistics,
    student_t_quantile,
    summarize_batches,
)


def test_t_quantile_matches_scipy_tabulated():
    for df in (1, 5, 19, 30, 120):
        expected = scipy_stats.t.ppf(0.95, df)
        assert student_t_quantile(df) == pytest.approx(expected, rel=1e-3)


def test_t_quantile_interpolated_values_reasonable():
    # df = 35 is between the tabulated 30 and 40.
    q = student_t_quantile(35)
    assert student_t_quantile(40) < q < student_t_quantile(30)
    expected = scipy_stats.t.ppf(0.95, 35)
    assert q == pytest.approx(expected, rel=1e-2)


def test_t_quantile_untabulated_range_tracks_scipy():
    # Every df in the untabulated interpolation range (30, 120) must stay
    # close to the exact quantile and strictly inside its bracketing
    # table entries.
    table_dfs = [30, 40, 50, 60, 80, 100, 120]
    for df in range(31, 120):
        if df in table_dfs:
            continue
        q = student_t_quantile(df)
        lower = max(k for k in table_dfs if k < df)
        upper = min(k for k in table_dfs if k > df)
        assert student_t_quantile(upper) < q < student_t_quantile(lower)
        assert q == pytest.approx(scipy_stats.t.ppf(0.95, df), rel=2e-3)


def test_t_quantile_monotone_over_untabulated_range():
    values = [student_t_quantile(df) for df in range(30, 121)]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Endpoints agree with the table, so interpolation is continuous.
    assert values[0] == pytest.approx(1.6973)
    assert values[-1] == pytest.approx(1.6577)


def test_t_quantile_large_df_is_normal():
    assert student_t_quantile(10_000) == pytest.approx(1.6449, abs=1e-4)


def test_t_quantile_other_confidence_uses_scipy():
    q = student_t_quantile(19, confidence=0.95)
    assert q == pytest.approx(scipy_stats.t.ppf(0.975, 19), rel=1e-6)


def test_t_quantile_invalid_df():
    with pytest.raises(ReproError):
        student_t_quantile(0)


def test_summarize_empty_rejected():
    with pytest.raises(ReproError):
        summarize_batches([])


def test_single_batch_has_zero_half_width():
    s = summarize_batches([42.0])
    assert s.mean == 42.0
    assert s.half_width == 0.0
    assert s.num_batches == 1


def test_constant_batches_zero_variance():
    s = summarize_batches([5.0] * 20)
    assert s.mean == 5.0
    assert s.std_dev == 0.0
    assert s.half_width == 0.0


def test_known_example():
    values = [10.0, 12.0, 11.0, 13.0]
    s = summarize_batches(values)
    assert s.mean == pytest.approx(11.5)
    # sample std dev of [10,12,11,13] = sqrt(5/3)
    assert s.std_dev == pytest.approx((5 / 3) ** 0.5)
    t = student_t_quantile(3)
    assert s.half_width == pytest.approx(t * s.std_dev / 2.0)


def test_ci_bounds_and_relative_width():
    s = summarize_batches([10.0, 12.0, 11.0, 13.0])
    assert s.ci_low == pytest.approx(s.mean - s.half_width)
    assert s.ci_high == pytest.approx(s.mean + s.half_width)
    assert s.relative_half_width == pytest.approx(s.half_width / s.mean)


def test_relative_width_zero_mean():
    s = BatchStatistics(mean=0.0, std_dev=1.0, half_width=0.5,
                        confidence=0.9, num_batches=5)
    assert s.relative_half_width == 0.0


def test_str_rendering():
    text = str(summarize_batches([10.0, 12.0]))
    assert "±" in text and "90%" in text
