"""Load-controller interface.

A load controller owns the transaction admission decision and may abort
active transactions as a corrective action.  The DBMS system invokes the
hooks below at the state transitions the paper identifies as decision
points (arrival, lock request, commit), plus bookkeeping hooks.

Controllers interact with the system through a narrow surface:

* ``system.tracker`` — :class:`repro.core.state_tracker.StateTracker`
  population counts;
* ``system.try_admit_one()`` — admit the head of the external ready
  queue, returning False if the queue is empty;
* ``system.abort_transaction(txn, reason)`` — abort an active
  transaction (it is re-queued at the back of the ready queue);
* ``system.lock_table`` — for victim eligibility checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional


if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.transaction import Transaction
    from repro.dbms.system import DBMSSystem
    from repro.telemetry.decisions import DecisionLog

__all__ = ["LoadController"]


class LoadController:
    """Base class: admits everything, reacts to nothing."""

    def __init__(self) -> None:
        self.system: "DBMSSystem" = None  # type: ignore[assignment]
        # Optional telemetry sink; controllers guard every use with a
        # single ``is not None`` check so the disabled path allocates
        # nothing (same discipline as the system's tracer).
        self.decision_log: Optional["DecisionLog"] = None
        # Display-only disambiguator appended to ``name`` (the
        # distributed telemetry layer tags each site's controller
        # ``@siteN`` so shared decision logs stay attributable).  It
        # must never feed back into results: anything that keys on the
        # controller identity uses ``base_name``.
        self.name_suffix: str = ""

    def attach(self, system: "DBMSSystem") -> None:
        """Bind to the system before the simulation starts."""
        self.system = system

    def on_decision_log_attached(self) -> None:
        """A decision log was just installed (telemetry enabled).

        Controllers with one-off configuration decisions (e.g. a
        derived MPL limit) record them here; the log is attached after
        construction, so ``__init__``/``attach`` are too early."""

    def log_decision(self, action: str,
                     txn: Optional["Transaction"] = None,
                     region=None,
                     measure: Optional[float] = None,
                     threshold: Optional[float] = None,
                     detail: str = "") -> None:
        """Record one verdict in the attached decision log.

        Call sites should guard with ``if self.decision_log is not
        None`` so the disabled path pays only that check; this method
        fills in the timestamp, controller name, and the population
        counts the controller observed.
        """
        log = self.decision_log
        if log is None:
            return
        from repro.telemetry.decisions import ControllerDecision
        # A log may be installed before attach() binds the system (e.g.
        # a controller configured by hand); counts are simply zero then.
        tracker = self.system.tracker if self.system is not None else None
        log.record(ControllerDecision(
            time=(self.system.sim.now if self.system is not None else 0.0),
            controller=self.name,
            action=action,
            region=(region.value if region is not None
                    and hasattr(region, "value") else region),
            n_active=(tracker.n_active if tracker is not None else 0),
            n_state1=(tracker.n_state1 if tracker is not None else 0),
            n_state3=(tracker.n_state3 if tracker is not None else 0),
            txn_id=(txn.txn_id if txn is not None else None),
            measure=measure,
            threshold=threshold,
            detail=detail,
        ))

    @property
    def base_name(self) -> str:
        """The controller's identity, independent of any display suffix.

        Subclasses override this (not ``name``) so the suffix
        composition in ``name`` applies uniformly."""
        return type(self).__name__

    @property
    def name(self) -> str:
        return self.base_name + self.name_suffix

    # ------------------------------------------------------------------
    # Decision hooks
    # ------------------------------------------------------------------

    def want_admit(self, txn: "Transaction") -> bool:
        """Admit this arriving (or restarting) transaction right now?

        Returning False parks it in the external ready queue; it then only
        enters when the controller later calls ``system.try_admit_one()``.
        """
        return True

    def on_admit(self, txn: "Transaction") -> None:
        """A transaction just became active."""

    def on_lock_granted(self, txn: "Transaction") -> None:
        """A lock request by ``txn`` was granted (immediately or after a
        wait).  The Half-and-Half algorithm admits from the ready queue
        here while the system is Underloaded."""

    def on_block(self, txn: "Transaction") -> None:
        """A lock request by ``txn`` blocked (and survived deadlock
        resolution).  The Half-and-Half algorithm aborts victims here
        while the system is Overloaded."""

    def on_unblock(self, txn: "Transaction") -> None:
        """A previously blocked transaction was granted its lock."""

    def on_commit(self, txn: "Transaction") -> None:
        """``txn`` committed (it has already left the active set)."""

    def on_abort(self, txn: "Transaction", reason: str) -> None:
        """``txn`` was aborted (it has already left the active set)."""

    def on_removed(self, txn: "Transaction") -> None:
        """``txn`` left the active set for any reason (after commit or
        abort hooks).  Controllers that maintain a fixed MPL top up the
        system here."""
