"""Runner for distributed simulations (mirrors the single-site runner)."""

from __future__ import annotations

from typing import Optional

from repro.core.maturity import MaturityRule
from repro.distributed.config import DistributedParameters
from repro.distributed.controllers import PerSiteControllerSet
from repro.distributed.system import DistributedSystem
from repro.lockmgr.prevention import DeadlockStrategy
from repro.metrics.collector import Collector
from repro.metrics.results import SimulationResults, build_results
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = ["run_distributed_simulation"]


def run_distributed_simulation(
        params: DistributedParameters,
        controllers: PerSiteControllerSet,
        maturity_rule: Optional[MaturityRule] = None,
        deadlock_strategy: DeadlockStrategy = DeadlockStrategy.DETECTION,
        admission_order=None) -> SimulationResults:
    """Run one multi-site simulation and return batch-means results."""
    sim = Simulator()
    streams = RandomStreams(params.seed)
    collector = Collector()
    system = DistributedSystem(
        params=params, controllers=controllers,
        maturity_rule=maturity_rule, collector=collector,
        sim=sim, streams=streams, deadlock_strategy=deadlock_strategy,
        admission_order=admission_order)
    system.start()

    sim.run(until=params.warmup_time)
    snapshots = [collector.snapshot(sim.now)]
    aborts_at_start = collector.aborts
    reasons_at_start = dict(collector.aborts_by_reason)
    for batch in range(1, params.num_batches + 1):
        sim.run(until=params.warmup_time + batch * params.batch_time)
        snapshots.append(collector.snapshot(sim.now))

    window_reasons = {
        reason: count - reasons_at_start.get(reason, 0)
        for reason, count in collector.aborts_by_reason.items()
    }
    return build_results(
        snapshots=snapshots,
        controller_name=controllers.name,
        workload_name=system.workload.name,
        commits=collector.commits,
        aborts=collector.aborts - aborts_at_start,
        aborts_by_reason=window_reasons,
        response_time_sum=collector.response_time_sum,
        restarts_of_committed=collector.restarts_of_committed,
        max_mpl=collector.active.max_value,
        per_class=collector.per_class,
    )
