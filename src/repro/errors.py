"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses distinguish the layer
that failed: simulation kernel, lock manager, configuration, or experiment
harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulation kernel on misuse.

    Examples: scheduling an event in the past, running a simulator whose
    clock has been corrupted, or double-cancelling an event.
    """


class ConfigurationError(ReproError):
    """Raised when simulation parameters are inconsistent or out of range."""


class LockManagerError(ReproError):
    """Base class for lock-manager protocol violations."""


class LockProtocolError(LockManagerError):
    """Raised when a transaction violates the locking protocol.

    Examples: releasing a lock it does not hold, requesting a lock while
    already waiting for another one, or downgrading an exclusive lock.
    """


class WorkloadError(ReproError):
    """Raised when a workload generator is asked for an impossible mix.

    Example: a transaction readset larger than the database.
    """


class ExperimentError(ReproError):
    """Raised by the experiment harness (unknown figure id, bad sweep)."""


class SpecExecutionError(ExperimentError):
    """One or more runs in a batch failed for good.

    Raised by the executor after a spec exhausts its retry attempts in
    strict mode; the message names the failing spec(s), their cache
    keys, and each attempt's error, so a crashed sweep is debuggable
    without re-running it.  When raised at the end of a batch the
    ``failures`` attribute (set by the executor, not pickled across
    process boundaries) carries the typed
    :class:`repro.resilience.FailedRun` records.
    """

    def __init__(self, message: str, failures=None):
        super().__init__(message)
        self.failures = list(failures) if failures else []

    def __reduce__(self):
        # FailedRun records hold arbitrary spec data; keep the exception
        # picklable across process boundaries by dropping them.
        return (type(self), (self.args[0],))


class FaultInjectionError(ReproError):
    """Raised (deliberately) by injected harness faults.

    Fault-injection tests and chaos jobs recognise this type to tell
    injected failures apart from genuine bugs.
    """


class VerificationError(ReproError):
    """Base class for failures raised by the verification subsystem
    (:mod:`repro.verify`): broken runtime invariants, divergence from a
    reference implementation, or golden-manifest drift."""


class InvariantViolation(VerificationError):
    """A cross-subsystem runtime invariant does not hold.

    Unlike a bare ``assert`` (stripped under ``python -O``), this is a
    real exception that always fires.  It carries everything needed to
    diagnose the violation without re-running:

    Attributes:
        invariant: short name of the violated invariant
            (e.g. ``"lock_conflict_freedom"``).
        sim_time: simulated time at which the violation was detected,
            when known.
        context: free-form description of the event context.
        evidence: JSON-serializable snapshot of the relevant state
            (lock table dump, tracker counts, collector counters, ...).
    """

    def __init__(self, message: str, invariant: str = "unspecified",
                 sim_time=None, context: str = "", evidence=None):
        super().__init__(message)
        self.invariant = invariant
        self.sim_time = sim_time
        self.context = context
        self.evidence = dict(evidence) if evidence else {}

    def __str__(self) -> str:
        base = self.args[0] if self.args else ""
        where = (f" at simulated time {self.sim_time:.6f}"
                 if self.sim_time is not None else "")
        return f"[invariant {self.invariant}{where}] {base}"


class ShadowDivergence(VerificationError):
    """The real implementation and its naive reference disagreed.

    Raised by shadow-mode differential checking (e.g.
    :class:`repro.verify.ShadowLockTable`) the moment an operation's
    outcome, grant cascade, or resulting state differs between the
    production implementation and the obviously-correct reference.

    Attributes:
        operation: the mutating operation that diverged.
        evidence: JSON-serializable dump of both sides' views.
    """

    def __init__(self, message: str, operation: str = "unspecified",
                 evidence=None):
        super().__init__(message)
        self.operation = operation
        self.evidence = dict(evidence) if evidence else {}

    def __str__(self) -> str:
        base = self.args[0] if self.args else ""
        return f"[shadow divergence in {self.operation}] {base}"
