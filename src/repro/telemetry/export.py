"""Structured telemetry export: JSONL streams plus a per-run manifest.

A :class:`TelemetrySession` bundles the three observers — a
:class:`~repro.metrics.trace.Tracer`, a
:class:`~repro.telemetry.decisions.DecisionLog`, and a
:class:`~repro.telemetry.probes.ProbeScheduler` — installs them on a
:class:`~repro.dbms.system.DBMSSystem`, and, after the run, serializes
everything into one directory:

* ``manifest.json``   — provenance (seed, parameters, spec hash,
  package fingerprint, record counts).  Fully deterministic: two runs
  of the same spec produce byte-identical manifests regardless of
  process layout.
* ``probes.jsonl`` / ``decisions.jsonl`` / ``trace.jsonl`` — one
  compact JSON object per line, sorted keys, deterministic bytes.
* ``profile.json``    — wall-clock numbers (run wall time, event-loop
  profile).  Deliberately the *only* non-deterministic file, so
  byte-comparing everything else across serial and process-pool
  execution is a valid equivalence check.

A :class:`TelemetryConfig` is the picklable recipe for sessions —
:func:`repro.experiments.parallel.run_specs` ships one across the
process pool and each worker opens its own session in a per-spec
subdirectory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, Iterable, Mapping, Optional,
                    Union)

from repro.errors import ConfigurationError
from repro.metrics.trace import TraceEvent, Tracer
from repro.telemetry.contention import ContentionMonitor
from repro.telemetry.decisions import DecisionLog
from repro.telemetry.online import OnlineRegimeMonitor
from repro.telemetry.perf import (AllocationProbe, PerfProfiler,
                                  chrome_trace_document, collapsed_stacks,
                                  speedscope_document)
from repro.telemetry.probes import ProbeScheduler
from repro.telemetry.profiling import EngineProfiler
from repro.telemetry.sites import DistributedProbeScheduler
from repro.telemetry.spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.system import DBMSSystem
    from repro.distributed.system import DistributedSystem

__all__ = [
    "TELEMETRY_FORMAT",
    "TelemetryConfig",
    "TelemetrySession",
    "json_dump",
    "jsonl_dump",
    "trace_event_to_dict",
    "write_cache_hit_manifest",
]

TELEMETRY_FORMAT = "repro-telemetry-v1"


def json_dump(obj: Any, path: Union[str, Path]) -> Path:
    """Write one JSON document with deterministic bytes."""
    path = Path(path)
    path.write_text(
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8")
    return path


def jsonl_dump(records: Iterable[Mapping[str, Any]],
               path: Union[str, Path]) -> Path:
    """Write records as JSON Lines with deterministic bytes."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
            fh.write("\n")
    return path


def trace_event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """The trace.jsonl row for one trace event."""
    return {
        "time": event.time,
        "type": event.event_type.value,
        "txn_id": event.txn_id,
        "detail": event.detail,
    }


def _code_fingerprint() -> str:
    # Imported lazily: the experiments layer sits above telemetry, and
    # eager import would create a cycle through the runner.
    from repro.experiments.parallel import code_fingerprint
    return code_fingerprint()


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable recipe for per-run telemetry sessions.

    Attributes:
        root: directory under which each run gets its own subdirectory.
        probe_interval: simulated seconds between probe samples.
        trace_capacity / decision_capacity: retention bounds for the
            trace and decision log (``None`` = unbounded).
        profile: attach an :class:`EngineProfiler` to the event loop.
        spans: attach a :class:`~repro.telemetry.spans.SpanRecorder`
            (per-transaction span timelines + latency analytics); the
            run directory gains ``spans.jsonl`` and ``latency.json``.
        span_capacity: retention bound for closed spans (``None`` =
            unbounded); the latency analytics see every span either way.
        contention: attach a
            :class:`~repro.telemetry.contention.ContentionMonitor`
            (per-page heat + wait-for-graph statistics); the run
            directory gains ``contention.jsonl`` and ``contention.json``.
        online: attach an
            :class:`~repro.telemetry.online.OnlineRegimeMonitor`
            (streaming regime detection over the probe stream); the
            run directory gains ``regimes.json`` and the decision log
            gains ``regime_change`` rows.
        perf: attach a :class:`~repro.telemetry.perf.PerfProfiler`
            (hot-path attribution over the logical stack phase →
            subsystem → event type → page class); the run directory
            gains ``perf.json``, ``flame.collapsed``,
            ``flame.speedscope.json``, and ``trace.json`` — all
            wall-clock artifacts, quarantined like ``profile.json``.
        alloc: additionally attach an
            :class:`~repro.telemetry.perf.AllocationProbe`
            (``tracemalloc`` top sites + per-tick GC deltas inside
            ``perf.json``); implies wall-clock overhead, requires
            ``perf``.
    """

    root: str
    probe_interval: float = 1.0
    trace_capacity: Optional[int] = None
    decision_capacity: Optional[int] = None
    profile: bool = True
    spans: bool = False
    span_capacity: Optional[int] = None
    contention: bool = False
    online: bool = False
    perf: bool = False
    alloc: bool = False

    def session_for(self, run_id: str) -> "TelemetrySession":
        """Open a session writing into ``<root>/<run_id>/``."""
        return TelemetrySession(
            Path(self.root) / run_id,
            probe_interval=self.probe_interval,
            trace_capacity=self.trace_capacity,
            decision_capacity=self.decision_capacity,
            profile=self.profile,
            spans=self.spans,
            span_capacity=self.span_capacity,
            contention=self.contention,
            online=self.online,
            perf=self.perf,
            alloc=self.alloc,
        )


class TelemetrySession:
    """Full observability for one simulation run.

    Typical use (the runner does this when given ``telemetry=``)::

        session = TelemetrySession("runs/base-case")
        results = run_simulation(params, controller, telemetry=session)
        # runs/base-case/ now holds manifest.json, probes.jsonl,
        # decisions.jsonl, trace.jsonl and profile.json

    ``manifest_extra`` may be filled by the caller before the run
    finishes (the parallel executor records the spec key and tag
    there); string keys with JSON-serializable values only.
    """

    def __init__(self, out_dir: Union[str, Path],
                 probe_interval: float = 1.0,
                 trace_capacity: Optional[int] = None,
                 decision_capacity: Optional[int] = None,
                 profile: bool = True,
                 spans: bool = False,
                 span_capacity: Optional[int] = None,
                 contention: bool = False,
                 online: bool = False,
                 perf: bool = False,
                 alloc: bool = False):
        if alloc and not perf:
            raise ConfigurationError(
                "telemetry option alloc requires perf: allocation "
                "probes ride the attribution profiler's ticks")
        self.out_dir = Path(out_dir)
        self.probe_interval = probe_interval
        self.tracer = Tracer(capacity=trace_capacity)
        self.decisions = DecisionLog(capacity=decision_capacity)
        self.probes: Optional[ProbeScheduler] = None
        # A PerfProfiler *is* an EngineProfiler, so when perf is on it
        # serves as the event-loop profiler too — one hook, both
        # granularities, and profile.json keeps its usual summary.
        if perf:
            self.profiler = PerfProfiler(
                alloc=AllocationProbe() if alloc else None)
        else:
            self.profiler = EngineProfiler() if profile else None
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(capacity=span_capacity) if spans else None)
        self.contention: Optional[ContentionMonitor] = (
            ContentionMonitor() if contention else None)
        self.online: Optional[OnlineRegimeMonitor] = (
            OnlineRegimeMonitor(decision_log=self.decisions)
            if online else None)
        # Callers may add provenance fields (spec key, tag, ...) here
        # before the run finishes; merged into the manifest.
        self.manifest_extra: Dict[str, Any] = {}
        self._finalized = False

    def install(self, system: "DBMSSystem") -> None:
        """Attach all observers to a freshly built system.

        Must run before ``system.start()`` so the first probe lands
        exactly one interval into the run.
        """
        system.tracer = self.tracer
        system.controller.decision_log = self.decisions
        system.controller.on_decision_log_attached()
        self.probes = ProbeScheduler(system, self.probe_interval)
        self.probes.start()
        if self.profiler is not None:
            system.sim.profiler = self.profiler
            # The attribution profiler rides the probe event for its
            # wall-clock throughput ticks (read-only piggyback, no
            # calendar change).
            if isinstance(self.profiler, PerfProfiler):
                self.probes.listeners.append(self.profiler)
        if self.spans is not None:
            self.spans.attach(system)
        if self.contention is not None:
            self.contention.attach(system)
            self.probes.listeners.append(self.contention)
        if self.online is not None:
            self.probes.listeners.append(self.online)

    def install_distributed(self, system: "DistributedSystem") -> None:
        """Attach observers to a freshly built distributed system.

        Must run before ``system.start()``.  One decision log serves
        every site controller (each tagged ``@siteN``) *and* the
        system's failure events (site crash/recovery, partitions,
        in-doubt holds, degraded-mode transitions).  Probing swaps in
        the :class:`~repro.telemetry.sites.DistributedProbeScheduler`,
        so the session additionally exports ``site_probes.jsonl``.

        Spans, contention, and online monitors hook single-site
        internals the distributed model does not expose; asking for
        them here is a configuration error rather than silent no-data.
        """
        enabled = [name for name, obs in (("spans", self.spans),
                                          ("contention", self.contention),
                                          ("online", self.online))
                   if obs is not None]
        if enabled:
            raise ConfigurationError(
                f"telemetry option(s) {', '.join(enabled)} are not "
                f"supported for distributed runs")
        system.decision_log = self.decisions
        for i, controller in enumerate(system.controllers.controllers):
            controller.name_suffix = f"@site{i}"
            controller.decision_log = self.decisions
            controller.on_decision_log_attached()
        self.probes = DistributedProbeScheduler(system,
                                                self.probe_interval)
        self.probes.start()
        if self.profiler is not None:
            system.sim.profiler = self.profiler
            if isinstance(self.profiler, PerfProfiler):
                self.probes.listeners.append(self.profiler)

    # ------------------------------------------------------------------

    def finalize(self,
                 params: Any = None,
                 controller_name: Optional[str] = None,
                 workload_name: Optional[str] = None,
                 sim_time: Optional[float] = None,
                 wall_time: Optional[float] = None,
                 extra: Optional[Mapping[str, Any]] = None) -> Path:
        """Serialize everything collected; returns the run directory."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        samples = self.probes.samples if self.probes is not None else []

        site_samples = getattr(self.probes, "site_samples", None)

        jsonl_dump((s.to_dict() for s in samples),
                   self.out_dir / "probes.jsonl")
        if site_samples is not None:
            jsonl_dump((s.to_dict() for s in site_samples),
                       self.out_dir / "site_probes.jsonl")
        jsonl_dump((d.to_dict() for d in self.decisions),
                   self.out_dir / "decisions.jsonl")
        jsonl_dump((trace_event_to_dict(e) for e in self.tracer),
                   self.out_dir / "trace.jsonl")
        if self.spans is not None:
            jsonl_dump((s.to_dict() for s in self.spans),
                       self.out_dir / "spans.jsonl")
            json_dump(self.spans.analytics.to_dict(),
                      self.out_dir / "latency.json")
        if self.contention is not None:
            jsonl_dump((s.to_dict() for s in self.contention.samples),
                       self.out_dir / "contention.jsonl")
            json_dump(self.contention.summary(),
                      self.out_dir / "contention.json")
        if self.online is not None:
            json_dump(self.online.summary(),
                      self.out_dir / "regimes.json")

        manifest: Dict[str, Any] = {
            "format": TELEMETRY_FORMAT,
            "seed": getattr(params, "seed", 0),
            "params": (_params_dict(params) if params is not None else {}),
            "controller": controller_name,
            "workload": workload_name,
            "sim_time": sim_time,
            "probe_interval": self.probe_interval,
            "code_fingerprint": _code_fingerprint(),
            "cache_hit": False,
            "records": {
                "probes": len(samples),
                "decisions": len(self.decisions),
                "decisions_dropped": self.decisions.dropped,
                "trace": len(self.tracer),
                "trace_dropped": self.tracer.dropped,
            },
        }
        if site_samples is not None:
            manifest["records"]["site_probes"] = len(site_samples)
        if self.spans is not None:
            manifest["records"]["spans"] = len(self.spans)
            manifest["records"]["spans_dropped"] = self.spans.dropped
        if self.contention is not None:
            manifest["records"]["contention"] = len(
                self.contention.samples)
        if self.online is not None:
            manifest["records"]["regime_changes"] = len(
                self.online.changes)
        manifest.update(self.manifest_extra)
        if extra:
            manifest.update(extra)
        json_dump(manifest, self.out_dir / "manifest.json")

        # Wall-clock facts are quarantined here so everything above
        # stays byte-deterministic.
        profile: Dict[str, Any] = {"wall_time_seconds": wall_time}
        if self.profiler is not None:
            profile["event_loop"] = self.profiler.summary()
        json_dump(profile, self.out_dir / "profile.json")

        if isinstance(self.profiler, PerfProfiler):
            # The attribution artifacts are wall-clock files like
            # profile.json; the manifest deliberately does not mention
            # them, so every pre-existing export stays byte-identical
            # with profiling on or off.
            if self.profiler.alloc is not None:
                self.profiler.alloc.stop()
            json_dump(self.profiler.perf_summary(),
                      self.out_dir / "perf.json")
            (self.out_dir / "flame.collapsed").write_text(
                collapsed_stacks(self.profiler), encoding="utf-8")
            json_dump(
                speedscope_document(self.profiler,
                                    name=self.out_dir.name),
                self.out_dir / "flame.speedscope.json")
            json_dump(
                chrome_trace_document(
                    self.spans if self.spans is not None else (),
                    samples,
                    profiler=self.profiler,
                    name=self.out_dir.name),
                self.out_dir / "trace.json")

        self._finalized = True
        return self.out_dir


def _params_dict(params: Any) -> Dict[str, Any]:
    import dataclasses
    if dataclasses.is_dataclass(params):
        return dataclasses.asdict(params)
    return dict(vars(params))


def write_cache_hit_manifest(run_dir: Union[str, Path],
                             seed: int,
                             params: Any = None,
                             extra: Optional[Mapping[str, Any]] = None
                             ) -> Optional[Path]:
    """Record provenance for a run served from the result cache.

    A cache hit executes nothing, so there are no streams to export —
    but the run directory still documents *what* the cached result was
    (seed, parameters, spec key, fingerprint).  An existing manifest
    (from the run that populated the cache) is left untouched.
    """
    run_dir = Path(run_dir)
    manifest_path = run_dir / "manifest.json"
    if manifest_path.exists():
        return None
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {
        "format": TELEMETRY_FORMAT,
        "seed": seed,
        "params": (_params_dict(params) if params is not None else {}),
        "controller": None,
        "workload": None,
        "sim_time": None,
        "probe_interval": None,
        "code_fingerprint": _code_fingerprint(),
        "cache_hit": True,
        "records": {},
    }
    if extra:
        manifest.update(extra)
    return json_dump(manifest, manifest_path)
