"""Blocked-fraction load control: Half-and-Half without maturity.

An ablation baseline isolating the value of the paper's *maturity*
notion.  This controller applies the same three-region feedback loop as
Half-and-Half but classifies transactions only as running or blocked —
a newly admitted transaction counts as "running" immediately, instead
of being held out of both conditions until it has completed 25% of its
lock requests.

The predictable failure mode (and the reason the paper introduces
maturity) is over-admission: each admitted transaction inflates the
running count *before* it has made a single lock request, so the
controller sees a healthy-looking system exactly when it is flooding
it.  The ``benchmarks/test_abl_maturity.py`` ablation quantifies this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.transaction import Transaction

from repro.control.base import LoadController
from repro.core.regions import DEFAULT_DELTA, Region
from repro.errors import ConfigurationError
from repro.metrics.collector import AbortReason

__all__ = ["BlockedFractionController"]


class BlockedFractionController(LoadController):
    """The 50% rule applied to raw running/blocked counts."""

    def __init__(self, delta: float = DEFAULT_DELTA):
        super().__init__()
        if delta < 0.0 or delta >= 0.5:
            raise ConfigurationError(
                f"delta must be in [0, 0.5), got {delta}")
        self.delta = delta
        self._admit_next_arrival = False
        self.load_control_aborts = 0

    @property
    def base_name(self) -> str:
        return f"BlockedFraction(δ={self.delta})"

    def region(self) -> Region:
        tracker = self.system.tracker
        n_active = tracker.n_active
        if n_active <= 0:
            return Region.UNDERLOADED
        threshold = 0.5 + self.delta
        if tracker.n_running / n_active > threshold:
            return Region.UNDERLOADED
        if tracker.n_blocked / n_active > threshold:
            return Region.OVERLOADED
        return Region.COMFORTABLE

    # ------------------------------------------------------------------
    # Hooks (deliberately identical in structure to Half-and-Half)
    # ------------------------------------------------------------------

    def _blocked_frac(self) -> float:
        tracker = self.system.tracker
        return (tracker.n_blocked / tracker.n_active
                if tracker.n_active else 0.0)

    def want_admit(self, txn: "Transaction") -> bool:
        if self._admit_next_arrival:
            self._admit_next_arrival = False
            if self.decision_log is not None:
                self.log_decision("admit_carryover", txn=txn,
                                  region=self.region())
            return True
        region = self.region()
        admit = region is Region.UNDERLOADED
        if self.decision_log is not None:
            self.log_decision("admit" if admit else "defer", txn=txn,
                              region=region,
                              measure=self._blocked_frac(),
                              threshold=0.5 + self.delta)
        return admit

    def on_lock_granted(self, txn: "Transaction") -> None:
        while self.region() is Region.UNDERLOADED:
            if not self.system.try_admit_one():
                break
            if self.decision_log is not None:
                self.log_decision("admit_queued",
                                  region=Region.UNDERLOADED,
                                  measure=self._blocked_frac(),
                                  threshold=0.5 + self.delta)

    def on_block(self, txn: "Transaction") -> None:
        while self.region() is Region.OVERLOADED:
            victim = self._choose_victim()
            if victim is None:
                break
            self.load_control_aborts += 1
            if self.decision_log is not None:
                self.log_decision("abort_victim", txn=victim,
                                  region=Region.OVERLOADED,
                                  measure=self._blocked_frac(),
                                  threshold=0.5 + self.delta)
            self.system.abort_transaction(victim, AbortReason.LOAD_CONTROL)

    def on_commit(self, txn: "Transaction") -> None:
        if self.system.try_admit_one():
            if self.decision_log is not None:
                self.log_decision("admit_on_commit", region=self.region())
        else:
            self._admit_next_arrival = True
            if self.decision_log is not None:
                self.log_decision("carry_admit", region=self.region())

    def _choose_victim(self) -> Optional["Transaction"]:
        lock_table = self.system.lock_table
        candidates: List["Transaction"] = [
            t for t in self.system.tracker.blocked_transactions()
            if lock_table.is_blocking_others(t)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda t: (t.timestamp, t.txn_id))
