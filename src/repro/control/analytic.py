"""Analytic model-predictive admission control.

Thomasian's mean-value analysis of 2PL (see PAPERS.md) predicts system
throughput as a function of the multiprogramming level from a handful
of workload parameters, which lets a controller *solve* for the optimal
MPL instead of probing for it the way Half-and-Half does.

:func:`predict_throughput` is the model as a pure function:

* Per-transaction service demands: ``k`` page reads and ``k·w``
  deferred writes cost one disk access plus one CPU burst each, so the
  no-contention transaction throughput at MPL ``M`` is bounded by the
  slowest of the think-free closed-system bound ``M / s`` (``s`` =
  total service demand) and the resource capacity bounds
  ``num_cpus / s_cpu`` and ``num_disks / s_disk``.
* Lock contention: with ``r = k·(1+w)`` lock requests against Tay's
  effective database ``Dₑ = D / (1 − (1−w)²)``, the per-request
  conflict probability grows linearly in ``M − 1`` and a conflicting
  request waits about half a residence time; the first-order contention
  intensity is ``x(M) = conflict_coeff · (M − 1)`` with the geometry
  prior ``conflict_coeff = r·k / (4·Dₑ)``.  The blocked-time fraction
  is the *saturating* ``β = x / (1 + x)`` (waiting stretches residence,
  which feeds back into the wait itself), so only ``M / (1 + x)``
  transactions make progress at once.
* Deadlock waste: blocking alone saturates throughput but never bends
  it down — the post-knee *decline* comes from restarted work.  The
  deadlock rate grows with the square of contention, modelled as a
  wasted-work fraction ``min(0.95, (conflict_coeff² / 4) · (M − 1)²)``.

The resulting throughput curve is unimodal in ``M`` — it rises while
the population bound dominates, flattens at the resource ceiling, and
declines once quadratic deadlock waste dominates — so its argmax is
the model's optimal MPL.

:class:`AnalyticMPCController` runs a fixed-MPL admission door at that
argmax and *refits* the model online: each decision epoch it re-derives
``conflict_coeff`` from the lock table's observed block/request ratio
(and an abort-rate efficiency factor from the commit/abort counters),
blends the estimate into the running coefficient with an EWMA, and
moves the admission limit to the refit model's argmax.  Every refit is
recorded through the decision log, so the model's trail is auditable.

The same :func:`predict_throughput` doubles as a differential reference
for the simulator: :mod:`repro.verify.envelope` checks that simulated
throughput lands inside the model's predicted envelope for the pinned
bench configurations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbms.transaction import Transaction

from repro.control.fixed_mpl import FixedMPLController
from repro.dbms.config import SimulationParameters
from repro.errors import ConfigurationError

__all__ = ["predict_throughput", "optimal_mpl", "conflict_coefficient",
           "AnalyticMPCController"]

# The quadratic deadlock-waste fraction is capped just short of 1:
# past total collapse the model only needs to stay monotone, not exact.
_MAX_WASTE_FRACTION = 0.95


def conflict_coefficient(tran_size: float, db_size: int,
                         write_prob: float) -> float:
    """The geometry prior for the contention intensity ``x = coeff·(M−1)``.

    ``r·k / (4·Dₑ)`` with ``r = k·(1+w)`` lock requests per transaction
    and Tay's effective database size.  A pure-read workload never
    conflicts under S locks, so the coefficient is 0.
    """
    if tran_size <= 0:
        raise ConfigurationError(
            f"tran_size must be positive, got {tran_size}")
    if db_size < 1:
        raise ConfigurationError(
            f"db_size must be >= 1, got {db_size}")
    if not 0.0 <= write_prob <= 1.0:
        raise ConfigurationError(
            f"write_prob must be in [0, 1], got {write_prob}")
    denom = 1.0 - (1.0 - write_prob) ** 2
    if denom <= 0.0:
        return 0.0
    d_eff = db_size / denom
    requests = tran_size * (1.0 + write_prob)
    return requests * tran_size / (4.0 * d_eff)


def predict_throughput(mpl: int, k: float, db_size: int,
                       write_prob: float, *,
                       num_cpus: int = 1, num_disks: int = 5,
                       page_cpu: float = 0.005, page_io: float = 0.035,
                       conflict_coeff: Optional[float] = None,
                       efficiency: float = 1.0) -> float:
    """Predicted committed page throughput (pages/second) at MPL ``mpl``.

    Args:
        mpl: multiprogramming level (>= 1).
        k: mean transaction size (pages read; ``k·write_prob`` of them
            are also written).
        db_size: database size in pages.
        write_prob: per-page write probability in [0, 1].
        num_cpus / num_disks: physical resource counts.
        page_cpu / page_io: per-page CPU and disk service times.
        conflict_coeff: the contention-intensity coefficient
            (``x = coeff·(M−1)``); defaults to the
            :func:`conflict_coefficient` geometry prior.  The MPC
            controller passes its refit estimate here.  The deadlock
            waste term is derived from it (``coeff²/4``), so one knob
            controls both contention effects.
        efficiency: fraction of processed work that commits (1 − the
            observed abort waste); scales the prediction down when the
            controller has observed abort churn.
    """
    if mpl < 1:
        raise ConfigurationError(f"mpl must be >= 1, got {mpl}")
    if page_cpu < 0.0 or page_io < 0.0:
        raise ConfigurationError("service times must be non-negative")
    if num_cpus < 1 or num_disks < 1:
        raise ConfigurationError("resource counts must be >= 1")
    if not 0.0 < efficiency <= 1.0:
        raise ConfigurationError(
            f"efficiency must be in (0, 1], got {efficiency}")
    if conflict_coeff is None:
        conflict_coeff = conflict_coefficient(k, db_size, write_prob)
    elif conflict_coeff < 0.0:
        raise ConfigurationError(
            f"conflict_coeff must be >= 0, got {conflict_coeff}")

    pages_per_txn = k * (1.0 + write_prob)
    cpu_demand = pages_per_txn * page_cpu
    disk_demand = pages_per_txn * page_io
    total_demand = cpu_demand + disk_demand
    if total_demand <= 0.0:
        raise ConfigurationError(
            "a transaction must demand some service time")

    intensity = conflict_coeff * (mpl - 1)
    effective_mpl = mpl / (1.0 + intensity)    # β = x/(1+x) blocked
    waste = min(_MAX_WASTE_FRACTION,
                (conflict_coeff ** 2 / 4.0) * (mpl - 1) ** 2)
    txn_rate = min(effective_mpl / total_demand,
                   num_cpus / cpu_demand,
                   num_disks / disk_demand)
    return txn_rate * pages_per_txn * (1.0 - waste) * efficiency


def optimal_mpl(max_mpl: int, k: float, db_size: int,
                write_prob: float, **model_kwargs) -> int:
    """The model's argmax MPL over ``1..max_mpl`` (ties go low)."""
    if max_mpl < 1:
        raise ConfigurationError(
            f"max_mpl must be >= 1, got {max_mpl}")
    best_mpl, best_value = 1, -1.0
    for mpl in range(1, max_mpl + 1):
        value = predict_throughput(mpl, k, db_size, write_prob,
                                   **model_kwargs)
        if value > best_value:
            best_mpl, best_value = mpl, value
    return best_mpl


class AnalyticMPCController(FixedMPLController):
    """Model-predictive admission: fixed-MPL door at the model argmax.

    Args:
        epoch_commits: commits per decision epoch; the model is refit
            and the admission limit re-solved at each epoch boundary.
        smoothing: EWMA weight of each epoch's fresh
            conflict-coefficient / efficiency estimates in (0, 1].
        initial_mpl: starting admission limit; ``None`` solves the
            prior model at :meth:`attach` time (the usual case).
    """

    def __init__(self, epoch_commits: int = 25, smoothing: float = 0.5,
                 initial_mpl: Optional[int] = None):
        if epoch_commits < 1:
            raise ConfigurationError(
                f"epoch_commits must be >= 1, got {epoch_commits}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}")
        super().__init__(initial_mpl if initial_mpl is not None else 1)
        self.epoch_commits = epoch_commits
        self.smoothing = smoothing
        self._solve_at_attach = initial_mpl is None
        self.conflict_coeff = 0.0    # set from params at attach()
        self.efficiency = 1.0
        self.refits = 0
        # Epoch accumulators: lock-table and collector counters at the
        # last epoch boundary, plus MPL samples at lock events (the
        # mean observed MPL converts the block ratio into a
        # per-(M−1) coefficient).
        self._epoch_commit_count = 0
        self._last_requests = 0
        self._last_blocks = 0
        self._last_commits = 0
        self._last_aborts = 0
        self._mpl_sum = 0
        self._mpl_samples = 0

    @property
    def base_name(self) -> str:
        return "AnalyticMPC"

    def attach(self, system) -> None:
        super().attach(system)
        params = system.params
        self.conflict_coeff = conflict_coefficient(
            params.tran_size, params.db_size, params.write_prob)
        if self._solve_at_attach:
            self.mpl = self._solve()

    def on_decision_log_attached(self) -> None:
        self.log_decision(
            "set_mpl", measure=float(self.mpl),
            threshold=self.conflict_coeff,
            detail=f"prior model argmax (coeff={self.conflict_coeff:.6f})")

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def on_lock_granted(self, txn: "Transaction") -> None:
        # One MPL sample per lock event: cheap, and weights the epoch
        # mean by lock activity, which is what the block ratio sees.
        self._mpl_sum += self.system.tracker.n_active
        self._mpl_samples += 1

    def on_commit(self, txn: "Transaction") -> None:
        self._epoch_commit_count += 1
        if self._epoch_commit_count >= self.epoch_commits:
            self._epoch_commit_count = 0
            self._refit()

    # ------------------------------------------------------------------
    # Model refitting
    # ------------------------------------------------------------------

    def _solve(self) -> int:
        params = self.system.params
        return optimal_mpl(
            params.num_terms, params.tran_size, params.db_size,
            params.write_prob,
            num_cpus=params.num_cpus, num_disks=params.num_disks,
            page_cpu=params.page_cpu, page_io=params.page_io,
            conflict_coeff=self.conflict_coeff,
            efficiency=self.efficiency)

    def _refit(self) -> None:
        """Blend this epoch's observations into the model, re-solve."""
        system = self.system
        requests = system.lock_table.requests
        blocks = system.lock_table.blocks
        commits = system.collector.commits
        aborts = system.collector.aborts
        d_requests = requests - self._last_requests
        d_blocks = blocks - self._last_blocks
        d_commits = commits - self._last_commits
        d_aborts = aborts - self._last_aborts
        self._last_requests, self._last_blocks = requests, blocks
        self._last_commits, self._last_aborts = commits, aborts

        alpha = self.smoothing
        params = system.params
        requests_per_txn = params.tran_size * (1.0 + params.write_prob)
        if d_requests > 0 and self._mpl_samples > 0:
            mean_mpl = self._mpl_sum / self._mpl_samples
            if mean_mpl > 1.0:
                # β ≈ r · Pc / 2 with Pc the observed block ratio;
                # invert β = x/(1+x) and divide by (M̄ − 1) to recover
                # the intensity coefficient.
                block_ratio = d_blocks / d_requests
                beta_hat = min(0.95,
                               requests_per_txn * block_ratio / 2.0)
                intensity_hat = beta_hat / (1.0 - beta_hat)
                coeff_hat = intensity_hat / (mean_mpl - 1.0)
                self.conflict_coeff = ((1.0 - alpha) * self.conflict_coeff
                                       + alpha * coeff_hat)
        self._mpl_sum = 0
        self._mpl_samples = 0
        outcomes = d_commits + d_aborts
        if outcomes > 0:
            efficiency_hat = max(0.05, d_commits / outcomes)
            self.efficiency = ((1.0 - alpha) * self.efficiency
                               + alpha * efficiency_hat)

        old_mpl = self.mpl
        self.mpl = self._solve()
        self.refits += 1
        if self.decision_log is not None:
            self.log_decision(
                "refit",
                measure=self.conflict_coeff,
                threshold=float(self.mpl),
                detail=(f"mpl {old_mpl} -> {self.mpl}, "
                        f"coeff={self.conflict_coeff:.6f}, "
                        f"efficiency={self.efficiency:.3f}, "
                        f"epoch blocks/requests={d_blocks}/{d_requests}"))
        if self.mpl > old_mpl:
            # The door widened: top the system up immediately instead
            # of waiting for the next removal.
            while (self.system.tracker.n_active < self.mpl
                   and self.system.try_admit_one()):
                if self.decision_log is not None:
                    self.log_decision(
                        "admit_queued",
                        measure=float(self.system.tracker.n_active),
                        threshold=float(self.mpl),
                        detail="top-up after refit")

    @classmethod
    def from_params(cls, params: SimulationParameters,
                    **kwargs) -> "AnalyticMPCController":
        """Build with the prior model solved for these parameters.

        The usual construction path solves the prior at ``attach()``;
        this helper exists for callers that want the controller's
        initial limit before a system exists.
        """
        controller = cls(**kwargs)
        controller.conflict_coeff = conflict_coefficient(
            params.tran_size, params.db_size, params.write_prob)
        controller.mpl = optimal_mpl(
            params.num_terms, params.tran_size, params.db_size,
            params.write_prob,
            num_cpus=params.num_cpus, num_disks=params.num_disks,
            page_cpu=params.page_cpu, page_io=params.page_io,
            conflict_coeff=controller.conflict_coeff)
        controller._solve_at_attach = False
        return controller
