"""Unit tests for the message-passing network model."""

from __future__ import annotations

import pytest

from repro.distributed.config import DistributedParameters
from repro.distributed.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class _Harness:
    """A network plus the scaffolding its callbacks need."""

    def __init__(self, active=True, seed=11, up=None, **overrides):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.params = DistributedParameters(num_sites=4, **overrides)
        self.up = set(range(4)) if up is None else set(up)
        self.deliveries = []
        self.payloads = []
        self.net = Network(
            self.sim, self.streams, self.params, active,
            site_up=lambda s: s in self.up,
            on_deliver=lambda dst, src: self.deliveries.append((dst, src)))

    def receive(self, *args):
        self.payloads.append((self.sim.now, args))


def test_same_site_send_is_inline():
    h = _Harness()
    h.net.send(2, 2, h.receive, "x")
    assert h.payloads == [(0.0, ("x",))]
    assert h.net.sent == 0          # never touched the network


def test_pure_delay_fast_path_is_original_model():
    """With the failure model off, a remote send is one calendar event
    ``msg_delay`` out, no counters, and no random-stream consumption."""
    h = _Harness(active=False, msg_delay=0.01,
                 msg_loss_prob=0.5, msg_jitter=0.1)
    for _ in range(20):
        h.net.send(0, 1, h.receive)
    h.sim.run()
    assert len(h.payloads) == 20
    assert all(t == 0.01 for t, _ in h.payloads)
    assert h.net.stats() == {k: 0 for k in h.net.stats()}
    # The loss/jitter substreams were never drawn from: a fresh streams
    # object with the same seed yields the same next values.
    fresh = RandomStreams(11)
    assert (h.streams.exponential("net_jitter", 1.0)
            == fresh.exponential("net_jitter", 1.0))
    assert (h.streams.bernoulli("net_loss", 0.5)
            == fresh.bernoulli("net_loss", 0.5))


def test_certain_loss_loses_every_datagram():
    h = _Harness(msg_loss_prob=0.999999, msg_delay=0.0)
    for _ in range(50):
        h.net.send(0, 1, h.receive)
    h.sim.run()
    assert h.net.lost == 50
    assert h.payloads == []
    assert h.deliveries == []


def test_down_endpoint_drops_without_consuming_randomness():
    h = _Harness(up={0, 2, 3}, msg_loss_prob=0.5)
    h.net.send(0, 1, h.receive)     # destination down
    h.net.send(1, 0, h.receive)     # source down
    h.sim.run()
    assert h.net.dropped_down == 2
    fresh = RandomStreams(11)
    assert (h.streams.bernoulli("net_loss", 0.5)
            == fresh.bernoulli("net_loss", 0.5))


def test_destination_crash_while_in_flight_drops():
    h = _Harness(msg_delay=0.05)
    h.net.send(0, 1, h.receive)
    h.up.discard(1)                 # crashes before delivery
    h.sim.run()
    assert h.payloads == []
    assert h.net.dropped_down == 1


def test_partition_severs_cross_group_pairs_only():
    h = _Harness(msg_delay=0.0)

    class Window:
        def severs(self, a, b, now):
            return {a, b} == {0, 3}
    h.net.partitions.append(Window())
    h.net.send(0, 3, h.receive)     # severed
    h.net.send(3, 0, h.receive)     # severed (symmetric)
    h.net.send(0, 1, h.receive)     # same side: flows
    h.sim.run()
    assert h.net.dropped_partition == 2
    assert len(h.payloads) == 1


def test_jitter_latency_is_deterministic_by_seed():
    def delivery_times(seed):
        h = _Harness(seed=seed, msg_delay=0.001, msg_jitter=0.002)
        for _ in range(10):
            h.net.send(0, 1, h.receive)
        h.sim.run()
        return [t for t, _ in h.payloads]

    first = delivery_times(5)
    assert first == delivery_times(5)
    assert first != delivery_times(6)
    assert all(t >= 0.001 for t in first)      # jitter only adds
    assert len(set(first)) > 1                 # and actually varies


def test_reliable_call_gives_up_after_retries():
    h = _Harness(msg_loss_prob=0.999999, msg_retries=2,
                 msg_timeout=0.25, msg_backoff=2.0, msg_backoff_cap=2.0)
    failures = []
    call = h.net.call(0, 1, h.receive, on_fail=lambda: failures.append(
        h.sim.now))
    h.sim.run()
    assert call.settled
    assert call.attempts == 3                  # 1 send + 2 retransmits
    assert h.net.retransmissions == 2
    assert h.net.expirations == 1
    # Bounded exponential backoff: 0.25 + 0.5 + 1.0.
    assert failures == [pytest.approx(1.75)]


def test_backoff_is_capped():
    h = _Harness(msg_loss_prob=0.999999, msg_retries=4,
                 msg_timeout=0.25, msg_backoff=2.0, msg_backoff_cap=1.0)
    failures = []
    h.net.call(0, 1, h.receive, on_fail=lambda: failures.append(h.sim.now))
    h.sim.run()
    # 0.25 + 0.5 + 1.0 + 1.0 + 1.0: the cap binds from attempt 3 on.
    assert failures == [pytest.approx(3.75)]


def test_settled_call_stops_retransmitting():
    h = _Harness(msg_loss_prob=0.0, msg_delay=0.0, msg_retries=4)
    call = h.net.call(0, 1, h.receive)
    call.settle()                   # protocol layer matched the reply
    h.sim.run()
    assert len(h.payloads) == 1
    assert h.net.retransmissions == 0
    assert h.net.expirations == 0


def test_sender_crash_silences_its_calls():
    h = _Harness(msg_loss_prob=0.999999, msg_retries=4, msg_timeout=0.1)
    failures = []
    call = h.net.call(0, 1, h.receive,
                      on_fail=lambda: failures.append(h.sim.now))
    h.up.discard(0)                 # sender crashes mid-exchange
    h.sim.run()
    assert call.settled
    assert failures == []           # the retransmitter died with it
