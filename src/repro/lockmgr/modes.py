"""Lock modes and the compatibility matrix.

The paper models page-level locking with the two classic modes: shared (S)
for reads and exclusive (X) for writes.  "Shared locks are compatible with
one another, but an exclusive lock on an object is incompatible with other
shared and exclusive locks on the object."
"""

from __future__ import annotations

import enum

__all__ = ["LockMode", "COMPATIBLE", "compatible"]


class LockMode(enum.IntEnum):
    """Page lock modes."""

    S = 0   # shared (read)
    X = 1   # exclusive (write)


# The compatibility matrix, precomputed: ``COMPATIBLE[held][requested]``.
# The matrix is tiny and static (only S/S coexists), so hot paths index
# it — or better, consult the per-lock holder-mode counters maintained
# by the lock table (see ``LockTable``) — instead of re-deriving
# compatibility per holder.
COMPATIBLE = (
    (True, False),    # held S: requested S ok, requested X conflicts
    (False, False),   # held X: conflicts with everything
)


def compatible(held: LockMode, requested: LockMode) -> bool:
    """True if a lock in ``requested`` mode can coexist with ``held``.

    Only S/S is compatible; every combination involving X conflicts.
    """
    return COMPATIBLE[held][requested]
