"""Tests for the resilience layer: retries, timeouts, crash recovery,
checkpoint/resume, and partial delivery through ``run_specs``."""

from __future__ import annotations

import pytest

from repro.control.fixed_mpl import FixedMPLController
from repro.errors import ExperimentError, SpecExecutionError
from repro.experiments import parallel
from repro.experiments.parallel import (
    ResultCache,
    RunSpec,
    last_batch_stats,
    run_specs,
    spec_key,
)
from repro.faultinject import HarnessFaultPlan
from repro.resilience import (
    FailedRun,
    FailureKind,
    ResiliencePolicy,
    SweepCheckpoint,
    is_failed,
    split_results,
)


def _specs(params, mpls=(2, 5, 8)):
    return [RunSpec(params=params, controller_factory=FixedMPLController,
                    controller_args=(m,)) for m in mpls]


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ExperimentError):
        ResiliencePolicy(retries=-1)
    with pytest.raises(ExperimentError):
        ResiliencePolicy(backoff_base=-0.1)
    with pytest.raises(ExperimentError):
        ResiliencePolicy(retry_budget=-1)
    with pytest.raises(ExperimentError):
        ResiliencePolicy(run_timeout=0.0)


def test_backoff_doubles_and_caps():
    policy = ResiliencePolicy(retries=5, backoff_base=1.0, backoff_cap=3.0)
    assert policy.max_attempts == 6
    assert [policy.backoff_delay(n) for n in (1, 2, 3, 4)] == \
        [1.0, 2.0, 3.0, 3.0]
    assert ResiliencePolicy().backoff_delay(1) == 0.0


# ----------------------------------------------------------------------
# Retry after injected failures — determinism survives
# ----------------------------------------------------------------------

def test_pooled_crash_retry_bit_identical_to_serial(tiny_params):
    specs = _specs(tiny_params)
    serial = run_specs(specs, jobs=1)
    # Spec 1's worker dies hard (os._exit) on its first attempt; the
    # pool breaks, gets rebuilt, and every run still comes back.
    fanned = run_specs(specs, jobs=2,
                       resilience=ResiliencePolicy(retries=2),
                       faults=["crash@1"])
    assert serial == fanned
    stats = last_batch_stats()
    assert stats.failed == 0
    assert stats.retried >= 1      # the crashed spec, plus collateral
    assert stats.executed == len(specs)


def test_serial_error_fault_is_retried(tiny_params):
    specs = _specs(tiny_params, (2, 5))
    clean = run_specs(specs)
    results = run_specs(specs,
                        resilience=ResiliencePolicy(retries=1),
                        faults=["error@0"])
    assert results == clean
    assert last_batch_stats().retried == 1
    assert last_batch_stats().failed == 0


def test_serial_crash_fault_degrades_to_error(tiny_params):
    # In-process "crash" cannot take the test process down; it raises
    # instead, and the retry succeeds.
    specs = _specs(tiny_params, (2,))
    results = run_specs(specs,
                        resilience=ResiliencePolicy(retries=1),
                        faults=["crash@0"])
    assert last_batch_stats().retried == 1
    assert results == run_specs(specs)


# ----------------------------------------------------------------------
# Exhausted attempts: strict vs partial delivery
# ----------------------------------------------------------------------

def test_exhausted_retries_raise_with_attempt_history(tiny_params,
                                                      tmp_path):
    cache = ResultCache(tmp_path)
    specs = _specs(tiny_params, (2, 5))
    with pytest.raises(SpecExecutionError) as excinfo:
        run_specs(specs, cache=cache,
                  resilience=ResiliencePolicy(retries=1),
                  faults=["error@0:99"])       # never stops failing
    [failure] = excinfo.value.failures
    assert isinstance(failure, FailedRun)
    assert len(failure.attempts) == 2
    assert all(a.kind == FailureKind.EXCEPTION for a in failure.attempts)
    assert [a.attempt for a in failure.attempts] == [1, 2]
    assert "injected" in failure.error
    # The surviving spec was still executed and cached before the raise.
    assert cache.get(spec_key(specs[1])) is not None
    assert cache.get(spec_key(specs[0])) is None


def test_deliver_partial_returns_failed_run_sentinels(tiny_params):
    specs = _specs(tiny_params, (2, 5))
    policy = ResiliencePolicy(retries=1, deliver_partial=True)
    results = run_specs(specs, resilience=policy, faults=["error@0:99"])
    assert last_batch_stats().failed == 1
    assert is_failed(results[0])
    assert not results[0]                     # falsy sentinel
    assert results[1] == run_specs([specs[1]])[0]
    ok, failed = split_results(results)
    assert len(ok) == 1 and len(failed) == 1
    assert failed[0].spec_key == spec_key(specs[0])
    with pytest.raises(SpecExecutionError):
        failed[0].raise_()


def test_retry_budget_quarantines_early(tiny_params):
    specs = _specs(tiny_params, (2,))
    policy = ResiliencePolicy(retries=5, retry_budget=1,
                              deliver_partial=True)
    [failure] = run_specs(specs, resilience=policy, faults=["error@0:99"])
    assert is_failed(failure)
    # 1 first attempt + 1 budgeted retry, though 6 attempts were allowed.
    assert len(failure.attempts) == 2
    assert failure.quarantined


# ----------------------------------------------------------------------
# Watchdog timeouts
# ----------------------------------------------------------------------

def test_serial_timeout_interrupts_hung_run(tiny_params):
    specs = _specs(tiny_params, (2,))
    policy = ResiliencePolicy(run_timeout=0.3, deliver_partial=True)
    # The serial hang sleeps fault.delay seconds; SIGALRM cuts it short.
    [failure] = run_specs(specs, resilience=policy,
                          faults=["hang@0:99:30"])
    assert is_failed(failure)
    assert [a.kind for a in failure.attempts] == [FailureKind.TIMEOUT]
    assert last_batch_stats().failed == 1


def test_pooled_timeout_kills_hung_worker(tiny_params):
    specs = _specs(tiny_params, (2, 5))
    policy = ResiliencePolicy(run_timeout=1.0, deliver_partial=True)
    results = run_specs(specs, jobs=2, resilience=policy,
                        faults=["hang@0:99"])
    assert is_failed(results[0])
    assert [a.kind for a in results[0].attempts] == [FailureKind.TIMEOUT]
    # The innocent spec completed (possibly after a collateral resubmit).
    assert results[1] == run_specs([specs[1]])[0]


def test_pooled_timeout_then_retry_succeeds(tiny_params):
    specs = _specs(tiny_params, (2, 5))
    clean = run_specs(specs)
    # Hang only on the first attempt; the retry runs clean.
    results = run_specs(specs, jobs=2,
                        resilience=ResiliencePolicy(run_timeout=1.0,
                                                    retries=1),
                        faults=["hang@0:1"])
    assert results == clean
    assert last_batch_stats().failed == 0


# ----------------------------------------------------------------------
# Poison specs: pool restarts, batch survives
# ----------------------------------------------------------------------

def test_poison_spec_quarantined_while_batch_completes(tiny_params,
                                                       tmp_path):
    cache = ResultCache(tmp_path)
    specs = _specs(tiny_params)
    clean = run_specs(specs)
    policy = ResiliencePolicy(retries=2, deliver_partial=True)
    results = run_specs(specs, jobs=2, cache=cache, resilience=policy,
                        faults=["crash@0:99"])     # always crashes
    assert is_failed(results[0])
    assert len(results[0].attempts) == 3
    assert all(a.kind == FailureKind.WORKER_CRASH
               for a in results[0].attempts)
    assert results[1:] == clean[1:]
    # Failures are never cached or journaled; survivors are both.
    assert cache.get(spec_key(specs[0])) is None
    journal = SweepCheckpoint(cache.root)
    assert spec_key(specs[0]) not in journal
    assert spec_key(specs[1]) in journal
    assert spec_key(specs[2]) in journal


# ----------------------------------------------------------------------
# SIGINT + checkpoint/resume
# ----------------------------------------------------------------------

def test_sigint_flushes_checkpoint_and_resume_skips_done(
        tiny_params, tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    specs = _specs(tiny_params)
    with pytest.raises(KeyboardInterrupt):
        run_specs(specs, cache=cache, faults=["sigint@2"])
    journal = SweepCheckpoint(cache.root)
    assert len(journal) == 2
    assert last_batch_stats().interrupted

    # Re-invocation executes only the remainder.
    calls = []
    original = parallel.run_simulation

    def counting(params, controller, **kwargs):
        calls.append(controller.name)
        return original(params, controller, **kwargs)

    monkeypatch.setattr(parallel, "run_simulation", counting)
    results = run_specs(specs, cache=cache)
    assert len(calls) == 1
    assert calls == ["FixedMPL(8)"]
    assert last_batch_stats().cached == 2
    assert last_batch_stats().resumed == 2
    assert [r.controller_name for r in results] == \
        ["FixedMPL(2)", "FixedMPL(5)", "FixedMPL(8)"]


def test_checkpoint_journal_round_trip(tmp_path):
    journal = SweepCheckpoint(tmp_path)
    assert len(journal) == 0
    journal.mark("a" * 64)
    journal.mark("a" * 64)          # idempotent
    journal.mark("b" * 64)
    journal.close()
    reloaded = SweepCheckpoint(tmp_path)
    assert reloaded.completed == {"a" * 64, "b" * 64}
    # Torn/garbage lines are ignored.
    with (tmp_path / SweepCheckpoint.FILENAME).open("a") as fh:
        fh.write("done\ngarbage line here\ndone " + "c" * 64 + "\n")
    assert ("c" * 64) in SweepCheckpoint(tmp_path)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------

def test_fault_plan_addresses_canonical_indices(tiny_params):
    # Duplicates collapse to one canonical spec; the fault indexes the
    # canonical batch positions, so "error@1" hits the second distinct
    # spec even though it is the third list element.
    a, b = _specs(tiny_params, (2, 5))
    results = run_specs([a, a, b],
                        resilience=ResiliencePolicy(retries=1),
                        faults=HarnessFaultPlan.parse("error@2"))
    assert last_batch_stats().retried == 1
    assert results[0] is results[1]


def test_worker_exception_names_spec_and_key(tiny_params):
    specs = _specs(tiny_params, (2,))
    with pytest.raises(SpecExecutionError) as excinfo:
        run_specs(specs, faults=["error@0:99"])
    message = str(excinfo.value)
    assert "FixedMPLController(2)" in message
    assert spec_key(specs[0])[:12] in message
