"""Tests for the distributed invariant oracle and quiesce checks."""

from __future__ import annotations

import pytest

from repro.distributed.config import DistributedParameters
from repro.distributed.controllers import make_half_and_half_sites
from repro.distributed.failures import SiteFaultPlan
from repro.distributed.system import DistributedSystem
from repro.errors import InvariantViolation
from repro.metrics.collector import Collector
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.verify import VerifyConfig
from repro.verify.distributed import (
    DistributedInvariantChecker,
    check_quiesce,
)

PLAN = SiteFaultPlan.parse("crash@1:8:4; part@8:4:0-1|2")


def _run_checked(fault_plan=None, cadence="sampled", until=None):
    params = DistributedParameters(
        num_sites=3, num_terms=30, db_size=300,
        warmup_time=3.0, num_batches=2, batch_time=8.0,
        failure_model=True, msg_loss_prob=0.02)
    sim = Simulator()
    system = DistributedSystem(
        params=params, controllers=make_half_and_half_sites(3),
        collector=Collector(), sim=sim,
        streams=RandomStreams(params.seed), fault_plan=fault_plan)
    checker = DistributedInvariantChecker(
        VerifyConfig(cadence=cadence, sample_events=128))
    checker.attach(system)
    system.start()
    sim.run(until=params.total_time if until is None else until)
    return system, checker


def test_clean_run_passes_full_catalog():
    system, checker = _run_checked()
    assert checker.checks_run > 0
    assert checker.violations == 0
    checker.check_all(context="end of run")
    check_quiesce(system)


def test_faulted_run_passes_full_catalog():
    system, checker = _run_checked(fault_plan=PLAN)
    assert checker.checks_run > 0
    checker.check_all(context="end of run")
    check_quiesce(system)


def test_default_config_is_usable():
    # VerifyConfig() enables the (single-site) shadow lock table; the
    # distributed checker must ignore that switch, not reject it.
    checker = DistributedInvariantChecker(VerifyConfig())
    assert checker.config.shadow_lock_table


def test_population_leak_is_caught():
    system, checker = _run_checked()
    # A parked terminal from nowhere: the closed population now sums
    # to num_terms + 1.
    system._parked_terminals.setdefault(0, []).append(999)
    with pytest.raises(InvariantViolation) as exc:
        checker.check_all()
    assert exc.value.invariant == "population_conservation"
    assert exc.value.sim_time == system.sim.now


def test_network_overcounting_is_caught():
    system, checker = _run_checked()
    system.network.delivered += system.network.sent + 1
    with pytest.raises(InvariantViolation) as exc:
        checker.check_all()
    assert exc.value.invariant == "network_accounting"


def test_orphan_decision_record_is_caught():
    system, checker = _run_checked()
    system.decision_record[999999] = "commit"
    system._decision_waiters[999999] = 2    # but no in-doubt entries
    with pytest.raises(InvariantViolation) as exc:
        checker.check_all()
    assert exc.value.invariant == "decision_record_accounting"


def test_bare_assertions_become_typed_violations(monkeypatch):
    system, checker = _run_checked()

    def broken():
        raise AssertionError("lock table corrupt")
    monkeypatch.setattr(system, "check_invariants", broken)
    with pytest.raises(InvariantViolation) as exc:
        checker.check_all()
    assert exc.value.invariant == "system_consistency"
    assert "lock table corrupt" in str(exc.value)


def test_quiesce_rejects_parked_work_when_all_sites_up():
    system, _ = _run_checked()
    system._parked_terminals.setdefault(1, []).append(7)
    with pytest.raises(InvariantViolation) as exc:
        check_quiesce(system)
    assert exc.value.invariant == "quiesce_no_parked_work"


def test_quiesce_is_not_binding_while_a_site_is_down():
    # End the run inside the crash window: parked work is legitimate.
    system, _ = _run_checked(fault_plan=PLAN, until=10.0)
    assert not all(system._site_up)
    check_quiesce(system)                   # must not raise


def test_every_cadence_checks_every_event():
    _, checker = _run_checked(cadence="every", until=5.0)
    assert checker.checks_run == checker.events_seen
