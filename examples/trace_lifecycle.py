#!/usr/bin/env python3
"""Trace transaction lifecycles through a contended system.

Attaches a Tracer to a small, hot database (lots of conflicts) and
narrates what the lock manager and the Half-and-Half controller did:
who blocked on whom, which deadlock victims were chosen, when the
controller stepped in, and the full life story of the unluckiest
transaction in the run.

Run:  python examples/trace_lifecycle.py
"""

from collections import Counter

from repro import (
    HalfAndHalfController,
    SimulationParameters,
    TraceEventType,
    Tracer,
    run_simulation,
)


def main() -> None:
    # A 100-page database with 6-page, write-heavy transactions:
    # guaranteed fireworks.
    params = SimulationParameters(
        num_terms=40, db_size=100, tran_size=6, write_prob=0.6,
        warmup_time=2.0, num_batches=2, batch_time=8.0)

    tracer = Tracer(capacity=200_000)
    result = run_simulation(params, HalfAndHalfController(),
                            tracer=tracer)

    print(f"Run: {result.summary_line()}\n")

    counts = tracer.counts()
    print("Event totals:")
    for event_type in TraceEventType:
        n = counts.get(event_type, 0)
        if n:
            print(f"  {event_type.value:<20} {n:>7}")
    print()

    # Find the transaction that was restarted the most.
    restarts = Counter(
        e.txn_id for e in tracer.events(TraceEventType.RESTART))
    if restarts:
        victim_id, n = restarts.most_common(1)[0]
        print(f"Unluckiest transaction: txn {victim_id} "
              f"({n} restarts).  Its life story:")
        for event in tracer.history_of(victim_id):
            print(f"  {event}")
    else:
        print("No transaction was restarted — lower db_size or raise "
              "write_prob for more drama.")


if __name__ == "__main__":
    main()
