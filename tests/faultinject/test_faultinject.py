"""Tests for deterministic fault injection: harness plans, simulated
resource-degradation windows, and workload disturbances."""

from __future__ import annotations

import pytest

from repro.control.fixed_mpl import FixedMPLController
from repro.core.half_and_half import HalfAndHalfController
from repro.errors import ExperimentError
from repro.experiments.parallel import RunSpec, spec_key
from repro.experiments.runner import run_simulation
from repro.faultinject import (
    FaultSchedule,
    FaultWindow,
    FaultyWorkload,
    FaultyWorkloadFactory,
    HarnessFault,
    HarnessFaultKind,
    HarnessFaultPlan,
    SystemFaultKind,
    WorkloadDisturbance,
)
from repro.sim.engine import Simulator
from repro.sim.resources.cpu import CpuPool
from repro.sim.resources.disk import DiskArray
from repro.sim.rng import RandomStreams
from repro.telemetry.decisions import DecisionAction, DecisionLog


# ----------------------------------------------------------------------
# Harness fault plans
# ----------------------------------------------------------------------

def test_plan_parse_full_grammar():
    plan = HarnessFaultPlan.parse(["crash@1", "hang@0:2", "slow@3:1:0.5"])
    assert plan.fault_for(1, 1).kind == HarnessFaultKind.CRASH
    assert plan.fault_for(1, 2) is None          # one attempt by default
    assert plan.fault_for(0, 2).kind == HarnessFaultKind.HANG
    assert plan.fault_for(0, 3) is None
    assert plan.fault_for(3, 1).delay == 0.5
    assert plan.fault_for(2, 1) is None
    assert bool(plan)
    assert not HarnessFaultPlan()


@pytest.mark.parametrize("bad", [
    "crash", "crash@", "@1", "nosuch@1", "crash@-1", "crash@x",
    "crash@1:2:3:4", "crash@1:0",
])
def test_plan_parse_rejects_bad_specs(bad):
    with pytest.raises(ExperimentError):
        HarnessFaultPlan.parse(bad)


def test_plan_rejects_duplicate_indices():
    with pytest.raises(ExperimentError):
        HarnessFaultPlan(faults=(HarnessFault("crash", 1),
                                 HarnessFault("hang", 1)))


# ----------------------------------------------------------------------
# Resource degradation knobs
# ----------------------------------------------------------------------

def test_cpu_service_scale_stretches_bursts():
    sim = Simulator()
    cpu = CpuPool(sim, num_cpus=1)
    done = []
    cpu.service_scale = 2.0
    cpu.request(1.0, done.append, "a")
    sim.run()
    assert done == ["a"]
    assert sim.now == 2.0


def test_disk_service_scale_stretches_accesses():
    sim = Simulator()
    disks = DiskArray(sim, num_disks=1)
    done = []
    disks.service_scale = 3.0
    disks.access(0, 1.0, done.append, "a")
    sim.run()
    assert done == ["a"]
    assert sim.now == 3.0


# ----------------------------------------------------------------------
# Fault windows and schedules
# ----------------------------------------------------------------------

def test_fault_window_validation():
    with pytest.raises(ExperimentError):
        FaultWindow(kind="nosuch", start=0.0, duration=1.0)
    with pytest.raises(ExperimentError):
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN, start=-1.0,
                    duration=1.0)
    with pytest.raises(ExperimentError):
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN, start=0.0,
                    duration=0.0)
    with pytest.raises(ExperimentError):
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN, start=0.0,
                    duration=1.0, severity=0.0)
    window = FaultWindow(kind=SystemFaultKind.CPU_DEGRADATION,
                        start=2.0, duration=3.0)
    assert window.end == 5.0


def _disk_fault(tiny_params, severity):
    measure = tiny_params.num_batches * tiny_params.batch_time
    return FaultSchedule(windows=(
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN,
                    start=tiny_params.warmup_time,
                    duration=measure, severity=severity),
    ))


def test_fault_schedule_is_deterministic_and_degrades(tiny_params):
    schedule = _disk_fault(tiny_params, 8.0)
    first = run_simulation(tiny_params, HalfAndHalfController(),
                           fault_schedule=schedule)
    again = run_simulation(tiny_params, HalfAndHalfController(),
                           fault_schedule=schedule)
    clean = run_simulation(tiny_params, HalfAndHalfController())
    assert first == again
    assert first.page_throughput.mean < clean.page_throughput.mean


def test_fault_windows_annotate_decision_log(tiny_params):
    controller = HalfAndHalfController()
    controller.decision_log = DecisionLog()
    run_simulation(tiny_params, controller,
                   fault_schedule=_disk_fault(tiny_params, 2.0))
    counts = controller.decision_log.counts()
    assert counts[DecisionAction.FAULT_BEGIN] == 1
    assert counts[DecisionAction.FAULT_END] == 1
    [begin] = controller.decision_log.decisions(DecisionAction.FAULT_BEGIN)
    assert begin.time == tiny_params.warmup_time
    assert begin.measure == 2.0


def test_overlapping_windows_compose_multiplicatively(tiny_params):
    sim = Simulator()
    disks = DiskArray(sim, num_disks=2)

    class _Sys:           # minimal duck-typed system for install()
        def __init__(self):
            self.sim = sim
            self.disks = disks
            self.cpu = CpuPool(sim, num_cpus=1)
            self.controller = HalfAndHalfController()

    schedule = FaultSchedule(windows=(
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN, start=1.0,
                    duration=4.0, severity=2.0),
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN, start=2.0,
                    duration=1.0, severity=3.0),
    ))
    system = _Sys()
    schedule.install(system)
    scales = {}
    for t in (0.5, 1.5, 2.5, 3.5, 5.5):
        sim.schedule_at(t, lambda t=t: scales.update(
            {t: disks.service_scale}))
    sim.run()
    assert scales == {0.5: 1.0, 1.5: 2.0, 2.5: 6.0, 3.5: 2.0, 5.5: 1.0}


def test_fault_schedule_changes_spec_key(tiny_params):
    clean = RunSpec(params=tiny_params,
                    controller_factory=FixedMPLController,
                    controller_args=(5,))
    faulted = RunSpec(params=tiny_params,
                      controller_factory=FixedMPLController,
                      controller_args=(5,),
                      fault_schedule=_disk_fault(tiny_params, 2.0))
    assert spec_key(clean) != spec_key(faulted)
    assert spec_key(faulted) == spec_key(
        RunSpec(params=tiny_params,
                controller_factory=FixedMPLController,
                controller_args=(5,),
                fault_schedule=_disk_fault(tiny_params, 2.0)))


# ----------------------------------------------------------------------
# Workload disturbances
# ----------------------------------------------------------------------

def test_disturbance_validation():
    with pytest.raises(ExperimentError):
        WorkloadDisturbance(start=-1.0, duration=1.0)
    with pytest.raises(ExperimentError):
        WorkloadDisturbance(start=0.0, duration=0.0)
    with pytest.raises(ExperimentError):
        WorkloadDisturbance(start=0.0, duration=1.0, size_factor=0.0)
    with pytest.raises(ExperimentError):
        WorkloadDisturbance(start=0.0, duration=1.0, hotspot_fraction=0.0)
    window = WorkloadDisturbance(start=2.0, duration=3.0)
    assert window.covers(2.0) and window.covers(4.9)
    assert not window.covers(1.9) and not window.covers(5.0)


def test_faulty_workload_disturbs_only_inside_windows(tiny_params):
    factory = FaultyWorkloadFactory(disturbances=(
        WorkloadDisturbance(start=10.0, duration=5.0, size_factor=3.0,
                            hotspot_fraction=0.1),
    ))
    workload = factory(RandomStreams(tiny_params.seed), tiny_params)
    assert isinstance(workload, FaultyWorkload)

    outside = [workload.make_transaction(i, 0, now=5.0)
               for i in range(50)]
    inside = [workload.make_transaction(100 + i, 0, now=12.0)
              for i in range(50)]
    assert all(t.class_name == "default" for t in outside)
    assert all(t.class_name == "disturbed" for t in inside)
    assert workload.disturbed_transactions == 50

    def mean_size(txns):
        return sum(len(t.readset) for t in txns) / len(txns)

    assert mean_size(inside) > 2.0 * mean_size(outside)
    # Hotspot: disturbed accesses concentrate on a database prefix.
    hot_limit = max(max(t.readset) for t in inside)
    cold_limit = max(max(t.readset) for t in outside)
    assert hot_limit < cold_limit


def test_faulty_workload_factory_without_windows_is_plain(tiny_params):
    workload = FaultyWorkloadFactory()(RandomStreams(1), tiny_params)
    assert not isinstance(workload, FaultyWorkload)


def test_faulty_workload_runs_end_to_end(tiny_params):
    factory = FaultyWorkloadFactory(disturbances=(
        WorkloadDisturbance(start=tiny_params.warmup_time,
                            duration=tiny_params.batch_time,
                            size_factor=2.0),
    ))
    result = run_simulation(tiny_params, HalfAndHalfController(),
                            workload_factory=factory)
    again = run_simulation(tiny_params, HalfAndHalfController(),
                           workload_factory=factory)
    assert result == again
    assert "Faulty" in result.workload_name


def test_probes_sample_service_scales_through_windows(tiny_params):
    from repro.control.no_control import NoControlController
    from repro.dbms.system import DBMSSystem
    from repro.telemetry.probes import ProbeScheduler

    sim = Simulator()
    system = DBMSSystem(params=tiny_params,
                        controller=NoControlController(),
                        sim=sim, streams=RandomStreams(tiny_params.seed))
    FaultSchedule(windows=(
        FaultWindow(kind=SystemFaultKind.DISK_SLOWDOWN, start=3.0,
                    duration=4.0, severity=2.0),
    )).install(system)
    probes = ProbeScheduler(system, interval=2.0)
    probes.start()
    system.start()
    sim.run(until=10.0)
    scales = {s.time: s.disk_scale for s in probes.samples}
    assert scales == {2.0: 1.0, 4.0: 2.0, 6.0: 2.0, 8.0: 1.0, 10.0: 1.0}
    assert all(s.cpu_scale == 1.0 for s in probes.samples)
    assert all("disk_scale" in s.to_dict() for s in probes.samples)
