#!/usr/bin/env python3
"""Load-control policy shootout under heavy contention.

Puts every policy the paper discusses on the same stressful workload
(200 terminals, base-case data contention) and compares:

* raw 2PL (no control)          — the thrashing baseline;
* a well-tuned fixed MPL (35)   — optimal, but only for this workload;
* a mistuned fixed MPL (100)    — what happens when the tuning is stale;
* Tay's rule of thumb           — analytic MPL from workload knowledge;
* bounded wait queues (limit 1) — the [Balt82] scheme;
* Half-and-Half                 — the paper's adaptive controller.

Run:  python examples/policy_shootout.py
"""

from repro import (
    BoundedWaitPolicy,
    FixedMPLController,
    HalfAndHalfController,
    NoControlController,
    SimulationParameters,
    TayRuleController,
    run_simulation,
)


def main() -> None:
    params = SimulationParameters(
        num_terms=200, warmup_time=30.0,
        num_batches=5, batch_time=40.0)

    runs = [
        ("raw 2PL", lambda: run_simulation(
            params, NoControlController())),
        ("fixed MPL 35 (tuned)", lambda: run_simulation(
            params, FixedMPLController(35))),
        ("fixed MPL 100 (stale)", lambda: run_simulation(
            params, FixedMPLController(100))),
        ("Tay's rule", lambda: run_simulation(
            params, TayRuleController.from_params(params))),
        ("bounded wait (K=1)", lambda: run_simulation(
            params, NoControlController(),
            wait_policy=BoundedWaitPolicy(limit=1))),
        ("Half-and-Half", lambda: run_simulation(
            params, HalfAndHalfController())),
    ]

    print(f"{'policy':<24} {'thruput':>8} {'raw':>8} {'wasted':>7} "
          f"{'avg MPL':>8} {'aborts':>7}")
    print("-" * 68)
    results = []
    for name, fn in runs:
        r = fn()
        results.append((name, r))
        print(f"{name:<24} {r.page_throughput.mean:>8.1f} "
              f"{r.raw_page_rate.mean:>8.1f} "
              f"{r.wasted_page_rate:>7.1f} "
              f"{r.avg_mpl:>8.1f} {r.aborts:>7}")

    print()
    winner = max(results, key=lambda kv: kv[1].page_throughput.mean)
    print(f"Winner: {winner[0]} "
          f"({winner[1].page_throughput.mean:.1f} pages/s)")
    print("'wasted' is raw minus committed page rate — work done for")
    print("transactions that were later aborted.  Note how the bounded-")
    print("wait scheme keeps the disks busy but wastes much of it, and")
    print("how the stale fixed MPL sits deep in thrashing territory.")


if __name__ == "__main__":
    main()
