"""Deterministic, seed-free fault injection at both layers of the stack.

Two very different things can fail: the *harness* that fans simulation
runs out over worker processes, and the *simulated system* whose
behaviour under disturbance the paper's controllers are supposed to
manage.  This package injects faults into both, deterministically — a
fault fires at a configured spec index or simulated time, never from a
wall-clock race — so resilience is testable in CI and recovery is
measurable as a figure.

Harness faults (:class:`HarnessFaultPlan`): crash, hang, slow-down, or
raise inside a worker at chosen spec indices/attempts, plus a simulated
SIGINT between specs.  These exist to exercise
:mod:`repro.resilience` + :func:`repro.experiments.parallel.run_specs`.

Simulated-system faults (:class:`FaultSchedule` of
:class:`FaultWindow`): transient disk-slowdown and CPU-degradation
windows applied to the simulated resources, annotated in the telemetry
decision log.  :class:`FaultyWorkload` disturbs the offered load the
same way: demand surges (larger transactions) and contention spikes
(accesses concentrated on a database prefix) inside simulated-time
windows.  Both are plain picklable data carried by the
:class:`~repro.experiments.parallel.RunSpec`, so faulted runs cache
and fan out like any other.
"""

from repro.faultinject.harness import (
    HarnessFault,
    HarnessFaultKind,
    HarnessFaultPlan,
    apply_worker_fault,
)
from repro.faultinject.system import (
    FaultSchedule,
    FaultWindow,
    SystemFaultKind,
)
from repro.faultinject.workload import (
    FaultyWorkload,
    FaultyWorkloadFactory,
    WorkloadDisturbance,
)

__all__ = [
    "HarnessFault",
    "HarnessFaultKind",
    "HarnessFaultPlan",
    "apply_worker_fault",
    "FaultSchedule",
    "FaultWindow",
    "SystemFaultKind",
    "FaultyWorkload",
    "FaultyWorkloadFactory",
    "WorkloadDisturbance",
]
